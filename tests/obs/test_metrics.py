"""Unit tests for the metrics registry."""

import pytest

from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    publish_counters,
)


class TestMetricTypes:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(5)
        g.set(2)
        assert g.value == 2.0

    def test_gauge_update_timestamp(self):
        g = Gauge()
        assert g.age_s() is None  # never written
        assert g.to_dict()["updated_monotonic"] is None
        g.set(1.0)
        assert g.age_s(now=g.updated_monotonic + 3.0) == pytest.approx(3.0)
        assert g.to_dict()["updated_monotonic"] == g.updated_monotonic

    def test_gauge_add_updates_timestamp(self):
        g = Gauge()
        g.set(5.0)
        first = g.updated_monotonic
        g.add(-2.0)
        assert g.value == 3.0
        assert g.updated_monotonic >= first

    def test_histogram_summary(self):
        h = Histogram()
        for value in (1.0, 3.0, 2.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_empty_histogram_dict_is_finite(self):
        d = Histogram().to_dict()
        assert d["min"] == 0.0 and d["max"] == 0.0 and d["mean"] == 0.0
        assert d["p50"] == 0.0 and d["p95"] == 0.0 and d["p99"] == 0.0

    def test_histogram_exact_percentiles(self):
        h = Histogram()
        for value in range(1, 101):  # 1..100
            h.observe(float(value))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(95) == pytest.approx(95.05)
        assert h.percentile(99) == pytest.approx(99.01)

    def test_histogram_percentiles_in_export(self):
        h = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            h.observe(value)
        d = h.to_dict()
        assert d["p50"] == pytest.approx(2.5)
        assert d["p99"] <= d["max"]
        assert d["p50"] <= d["p95"] <= d["p99"]

    def test_histogram_bucket_fallback_past_cap(self):
        from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP

        h = Histogram()
        for _ in range(HISTOGRAM_SAMPLE_CAP + 500):
            h.observe(8.0)  # exactly one bucket: [8, 16)
        p50 = h.percentile(50)
        assert h.min <= p50 <= h.max  # clamped into observed range
        assert p50 == pytest.approx(8.0)

    def test_histogram_bucket_fallback_orders_buckets(self):
        from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP

        h = Histogram()
        for _ in range(HISTOGRAM_SAMPLE_CAP):
            h.observe(1.0)
        for _ in range(HISTOGRAM_SAMPLE_CAP):
            h.observe(1000.0)
        # Half the mass sits at ~1, half at ~1000: p25 stays low, p95 high.
        assert h.percentile(25) < 2.0
        assert h.percentile(95) > 500.0

    def test_histogram_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)
        with pytest.raises(ValueError):
            Histogram().percentile(-0.1)

    def test_histogram_zero_and_negative_values(self):
        h = Histogram()
        for value in (0.0, -1.0, 2.0):
            h.observe(value)
        assert h.percentile(0) == -1.0
        assert h.percentile(100) == 2.0

    def test_bucket_estimate_extreme_percentiles(self):
        # Past the sample cap, q=0 and q=100 must stay clamped to the
        # exact observed min/max even though the buckets only bound them.
        from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP

        h = Histogram()
        for i in range(HISTOGRAM_SAMPLE_CAP + 100):
            h.observe(3.0 + (i % 7))  # values in [3, 9]
        assert h.percentile(0) == h.min == 3.0
        assert h.percentile(100) == h.max == 9.0

    def test_bucket_estimate_all_equal_values(self):
        from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP

        h = Histogram()
        for _ in range(HISTOGRAM_SAMPLE_CAP * 2):
            h.observe(5.0)
        for q in (0, 25, 50, 75, 100):
            assert h.percentile(q) == pytest.approx(5.0)

    def test_bucket_estimate_nonpositive_values(self):
        # Zero and negative observations share the sentinel underflow
        # bucket; the estimate must stay within [min, max], never NaN.
        from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP

        h = Histogram()
        for i in range(HISTOGRAM_SAMPLE_CAP + 50):
            h.observe(-2.0 if i % 2 else 0.0)
        for q in (0, 50, 100):
            value = h.percentile(q)
            assert h.min <= value <= h.max
        assert h.percentile(0) == -2.0
        assert h.percentile(100) == 0.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_convenience_oneshots(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set_gauge("g", 7)
        reg.observe("h", 1.5)
        snap = reg.snapshot()
        assert snap["c"]["value"] == 2.0
        assert snap["g"]["value"] == 7.0
        assert snap["h"]["count"] == 1

    def test_snapshot_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        assert list(reg.snapshot()) == ["a", "z"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert len(reg) == 0

    def test_len_consistent_under_concurrent_writers(self):
        # __len__ takes the registry lock like snapshot(); hammer it from
        # reader threads while writers register new metrics.
        import threading

        reg = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    assert len(reg) >= 0
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for i in range(2000):
            reg.inc(f"m.{i}")
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(reg) == 2000


class TestConcurrency:
    def test_snapshot_vs_reset_race(self):
        # Writers register metrics and readers snapshot()/reset() at the
        # same time: no exception and every snapshot is internally
        # consistent (each doc fully formed).
        import threading

        reg = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def churn():
            while not stop.is_set():
                try:
                    for doc in reg.snapshot().values():
                        assert "type" in doc
                    reg.reset()
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return

        threads = [threading.Thread(target=churn) for _ in range(2)]
        for thread in threads:
            thread.start()
        for i in range(3000):
            reg.inc(f"c.{i % 7}")
            reg.set_gauge(f"g.{i % 5}", float(i))
            reg.observe("h", float(i % 11))
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors

    def test_counter_concurrent_increments_sum(self):
        import threading

        c = Counter()

        def bump():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert c.value == 40_000.0

    def test_histogram_to_dict_under_concurrent_observe(self):
        # to_dict() must always see a consistent (count, total, samples)
        # triple: count == 0 implies zeroed summaries, and mean stays
        # within the observed range.
        import threading

        h = Histogram()
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    d = h.to_dict()
                    assert d["count"] >= 0
                    if d["count"]:
                        assert d["min"] <= d["mean"] <= d["max"]
                        assert d["min"] <= d["p50"] <= d["max"]
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for i in range(20_000):
            h.observe(1.0 + (i % 10))
        stop.set()
        for thread in threads:
            thread.join()
        assert not errors
        assert h.count == 20_000


class TestNullRegistry:
    def test_disabled(self):
        assert NullRegistry.enabled is False
        assert MetricsRegistry.enabled is True

    def test_operations_noop(self):
        NULL_REGISTRY.inc("x", 5)
        NULL_REGISTRY.set_gauge("y", 1)
        NULL_REGISTRY.observe("z", 2)
        assert NULL_REGISTRY.snapshot() == {}

    def test_accessors_return_shared_nulls(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")


class TestPublishCounters:
    def test_prefixing(self):
        reg = MetricsRegistry()
        publish_counters(reg, "kernel.basic", {"gathers": 3, "flops": 6.0})
        snap = reg.snapshot()
        assert snap["kernel.basic.gathers"]["value"] == 3.0
        assert snap["kernel.basic.flops"]["value"] == 6.0

    def test_disabled_registry_skipped(self):
        publish_counters(NULL_REGISTRY, "kernel", {"gathers": 3})
        assert NULL_REGISTRY.snapshot() == {}


class TestMerge:
    def test_counter_merge_sums(self):
        a, b = Counter(), Counter()
        a.inc(3.0)
        b.inc(4.5)
        a.merge(b)
        assert a.value == 7.5
        assert b.value == 4.5  # source untouched

    def test_gauge_merge_latest_write_wins(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(2.0)  # written after a: b is the fresher reading
        a.merge(b)
        assert a.value == 2.0

    def test_gauge_merge_keeps_fresher_local_value(self):
        a, b = Gauge(), Gauge()
        b.set(2.0)
        a.set(1.0)  # written after b
        a.merge(b)
        assert a.value == 1.0

    def test_gauge_merge_never_written_loses(self):
        a, b = Gauge(), Gauge()
        a.set(5.0)
        a.merge(b)  # b never written: no-op
        assert a.value == 5.0
        c = Gauge()
        b.set(7.0)
        c.merge(b)  # c never written: b wins even without comparing
        assert c.value == 7.0

    def test_histogram_merge_counts_totals_extremes(self):
        a, b = Histogram(), Histogram()
        for value in (1.0, 5.0):
            a.observe(value)
        for value in (0.5, 9.0, 2.0):
            b.observe(value)
        a.merge(b)
        assert a.count == 5
        assert a.total == pytest.approx(17.5)
        assert a.min == 0.5
        assert a.max == 9.0
        # Raw samples concatenated under the cap: percentiles stay exact.
        assert a.percentile(100.0) == 9.0

    def test_histogram_merge_respects_sample_cap(self):
        from repro.obs.metrics import HISTOGRAM_SAMPLE_CAP

        a, b = Histogram(), Histogram()
        for _ in range(HISTOGRAM_SAMPLE_CAP - 1):
            a.observe(1.0)
        for _ in range(10):
            b.observe(2.0)
        a.merge(b)
        assert a.count == HISTOGRAM_SAMPLE_CAP + 9
        assert len(a._samples) == HISTOGRAM_SAMPLE_CAP
        assert a.max == 2.0  # extremes survive even past the cap

    def test_histogram_merge_empty_other_is_noop(self):
        a = Histogram()
        a.observe(3.0)
        a.merge(Histogram())
        assert a.count == 1
        assert a.min == 3.0

    def test_registry_merge_with_prefix(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        child.inc("work.gathers", 100.0)
        child.set_gauge("work.depth", 4.0)
        child.observe("work.chunk_ms", 1.5)
        merged = parent.merge(child, prefix="worker0.")
        assert merged == 3
        snap = parent.snapshot()
        assert snap["worker0.work.gathers"]["value"] == 100.0
        assert snap["worker0.work.depth"]["value"] == 4.0
        assert snap["worker0.work.chunk_ms"]["count"] == 1

    def test_registry_merge_sums_existing_counters(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.inc("gathers", 10.0)
        child.inc("gathers", 32.0)
        parent.merge(child)
        assert parent.snapshot()["gathers"]["value"] == 42.0

    def test_registry_merge_type_collision_raises(self):
        parent, child = MetricsRegistry(), MetricsRegistry()
        parent.inc("x")
        child.set_gauge("x", 1.0)
        with pytest.raises(TypeError):
            parent.merge(child)


class TestPickleRoundTrip:
    def test_registry_survives_pickle(self):
        import pickle

        registry = MetricsRegistry()
        registry.inc("work.gathers", 7.0)
        registry.set_gauge("work.depth", 2.0)
        for value in (1.0, 2.0, 3.0):
            registry.observe("work.ms", value)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.snapshot() == registry.snapshot()
        # The recreated lock is live: the clone keeps working.
        clone.inc("work.gathers", 1.0)
        assert clone.snapshot()["work.gathers"]["value"] == 8.0

    def test_merge_after_pickle_matches_direct_merge(self):
        import pickle

        parent_a, parent_b = MetricsRegistry(), MetricsRegistry()
        child = MetricsRegistry()
        child.inc("gathers", 5.0)
        child.observe("ms", 0.25)
        parent_a.merge(child, prefix="worker0.")
        parent_b.merge(pickle.loads(pickle.dumps(child)), prefix="worker0.")
        assert parent_a.snapshot() == parent_b.snapshot()


class TestHistogramTimer:
    def test_time_observes_block_duration(self):
        import time

        h = Histogram()
        with h.time():
            time.sleep(0.01)
        assert h.count == 1
        assert 0.005 <= h.percentile(50.0) < 1.0

    def test_time_matches_manual_observe_semantics(self):
        """A timed block and a manual observe land identically: one
        sample, counted in count/total/percentiles alike."""
        import time

        timed, manual = Histogram(), Histogram()
        with timed.time():
            pass
        start = time.perf_counter()
        manual.observe(time.perf_counter() - start)
        assert timed.count == manual.count == 1
        assert timed.total >= 0.0 and manual.total >= 0.0

    def test_time_observes_even_on_exception(self):
        h = Histogram()
        with pytest.raises(RuntimeError):
            with h.time():
                raise RuntimeError("boom")
        assert h.count == 1

    def test_registry_histogram_time_roundtrip(self):
        registry = MetricsRegistry()
        with registry.histogram("stage.s").time():
            pass
        snapshot = registry.snapshot()
        assert snapshot["stage.s"]["count"] == 1

    def test_null_registry_histogram_time_is_noop(self):
        with NULL_REGISTRY.histogram("stage.s").time():
            pass
        assert len(NULL_REGISTRY) == 0
