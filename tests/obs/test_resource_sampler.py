"""Unit tests for the background process-resource sampler."""

import threading
import time

import pytest

from repro.obs import NULL_SAMPLER, NullResourceSampler, ResourceSampler
from repro.obs.metrics import MetricsRegistry


class TestSampleOnce:
    def test_publishes_proc_metrics(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry)
        sample = sampler.sample_once()
        assert sample["rss_bytes"] > 0  # a live Python process has RSS
        assert sample["num_threads"] >= 1
        snap = registry.snapshot()
        assert snap["proc.rss_bytes"]["value"] == sample["rss_bytes"]
        assert snap["proc.samples"]["value"] == 1.0
        assert snap["proc.rss_bytes.samples"]["count"] == 1

    def test_first_sample_suppresses_cpu_percent(self):
        # Regression: the first sample has no prior *sample* to delta
        # against — its percent was init-to-now garbage (often wildly
        # inflated by a sub-millisecond wall interval).  It must prime
        # the baseline and publish no percent at all.
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry)
        first = sampler.sample_once()
        assert "cpu_percent" not in first
        snap = registry.snapshot()
        assert "proc.cpu_percent" not in snap
        assert "proc.cpu_percent.samples" not in snap
        second = sampler.sample_once()
        assert "cpu_percent" in second
        snap = registry.snapshot()
        assert snap["proc.cpu_percent.samples"]["count"] == 1

    def test_restart_reprimes_the_baseline(self):
        sampler = ResourceSampler(MetricsRegistry(), interval_s=0.01)
        assert "cpu_percent" not in sampler.sample_once()
        assert "cpu_percent" in sampler.sample_once()
        sampler.start()  # start() resets the baseline: stale delta again
        assert sampler._primed is False
        sampler.stop()

    def test_cpu_percent_nonnegative(self):
        sampler = ResourceSampler(MetricsRegistry())
        sampler.sample_once()  # primes the baseline, publishes no percent
        for _ in range(3):
            assert sampler.sample_once()["cpu_percent"] >= 0.0

    def test_cpu_seconds_cumulative_gauge(self):
        # Besides the between-samples cpu_percent delta, the cumulative
        # process CPU time is exposed as its own monotone gauge.
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry)
        first = sampler.sample_once()["cpu_seconds"]
        sum(i * i for i in range(200_000))  # burn a little CPU
        second = sampler.sample_once()["cpu_seconds"]
        assert second >= first >= 0.0
        snap = registry.snapshot()
        assert snap["proc.cpu_seconds"]["value"] == second
        assert snap["proc.cpu_seconds"]["updated_monotonic"] is not None

    def test_cpu_percent_reflects_delta_between_samples(self):
        sampler = ResourceSampler(MetricsRegistry())
        sampler.sample_once()
        sum(i * i for i in range(2_000_000))  # measurable busy interval
        assert sampler.sample_once()["cpu_percent"] > 0.0


class TestBackgroundThread:
    def test_start_stop_collects_samples(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval_s=0.005)
        sampler.start()
        time.sleep(0.05)
        sampler.stop()
        # At least the final stop() sample; usually several interval ticks.
        assert sampler.samples >= 1
        assert registry.snapshot()["proc.samples"]["value"] == sampler.samples
        # The daemon thread is gone after stop().
        names = [t.name for t in threading.enumerate()]
        assert "repro-resource-sampler" not in names

    def test_start_idempotent(self):
        sampler = ResourceSampler(MetricsRegistry(), interval_s=0.01)
        sampler.start()
        thread = sampler._thread
        sampler.start()
        assert sampler._thread is thread
        sampler.stop()

    def test_context_manager(self):
        registry = MetricsRegistry()
        with ResourceSampler(registry, interval_s=0.01) as sampler:
            pass
        assert sampler.samples >= 1

    def test_stop_without_start(self):
        ResourceSampler(MetricsRegistry()).stop()  # must not raise

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            ResourceSampler(MetricsRegistry(), interval_s=0.0)


class TestNullSampler:
    def test_null_is_inert(self):
        assert not NULL_SAMPLER.enabled
        assert NULL_SAMPLER.start() is NULL_SAMPLER
        assert NULL_SAMPLER.sample_once() == {}
        NULL_SAMPLER.stop()
        assert NULL_SAMPLER.samples == 0

    def test_null_context_manager(self):
        with NullResourceSampler() as sampler:
            assert sampler.sample_once() == {}
        names = [t.name for t in threading.enumerate()]
        assert "repro-resource-sampler" not in names
