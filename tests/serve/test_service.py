"""Integration tests: the inference service + HTTP front end, traced.

The centerpiece assertions mirror the acceptance bar: one HTTP request
renders as a complete ``serve.request -> serve.queue -> serve.batch ->
kernel.serve.block`` span tree sharing a single trace id, and the
served logits match the full-graph ``model.predict`` oracle exactly
(the default assembly is exact, not sampled).
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.nn import build_model
from repro.serve import (
    AdmissionRejected,
    InferenceService,
    RequestTimeout,
    ServingServer,
)


@pytest.fixture()
def setup(small_products, features16):
    model = build_model("gcn", 16, 8, 5, num_layers=2, seed=1)
    service = InferenceService(
        small_products, features16, model, max_wait_s=0.001
    )
    yield small_products, features16, model, service
    service.close()


def get_json(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def post_json(url, doc, timeout=10.0):
    request = urllib.request.Request(
        url,
        data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


class TestQuery:
    def test_classify_matches_full_graph_predict(self, setup):
        graph, features, model, service = setup
        oracle = model.predict(graph, features)
        response = service.query([0, 3, 7], mode="classify")
        assert response["classes"] == [
            int(oracle[v].argmax()) for v in (0, 3, 7)
        ]
        assert response["scores"] == pytest.approx(
            [float(oracle[v].max()) for v in (0, 3, 7)], abs=1e-4
        )

    def test_repeated_vertices_answered_per_position(self, setup):
        _, _, _, service = setup
        response = service.query([5, 5, 2, 5])
        assert len(response["classes"]) == 4
        assert response["classes"][0] == response["classes"][1]
        assert response["classes"][1] == response["classes"][3]

    def test_embedding_mode_row_width_is_last_hidden(self, setup):
        _, _, model, service = setup
        response = service.query([1, 2], mode="embedding")
        assert len(response["embeddings"]) == 2
        # the embedding is the input to the final layer
        assert len(response["embeddings"][0]) == model.layers[-1].in_features

    def test_second_request_is_a_cache_hit(self, setup):
        _, _, _, service = setup
        first = service.query([4])
        second = service.query([4])
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["classes"] == first["classes"]
        assert service.cache.hits >= 1

    def test_bad_input_raises_value_error(self, setup):
        _, _, _, service = setup
        with pytest.raises(ValueError):
            service.query([])
        with pytest.raises(ValueError):
            service.query([0], mode="nope")
        with pytest.raises(ValueError):
            service.query([10**9])
        with pytest.raises(ValueError):
            service.query([-1])

    def test_stats_document(self, setup):
        graph, _, _, service = setup
        service.query([0])
        stats = service.stats()
        assert stats["requests"] == 1
        assert stats["graph"]["vertices"] == graph.num_vertices
        assert stats["assembly"] == "exact"


class TestTracePropagation:
    def test_request_span_tree_shares_one_trace_id(self, setup):
        _, _, _, service = setup
        tracer, _ = obs.enable()
        try:
            response = service.query([2, 9])
        finally:
            obs.disable()
        tid = response["trace_id"]
        spans = tracer.spans()
        request = next(
            s for s in spans
            if s.name == "serve.request" and s.attrs.get("trace_id") == tid
        )
        children = [s for s in spans if s.parent_id == request.span_id]
        names = sorted(s.name for s in children)
        assert names == ["serve.batch", "serve.queue"]
        batch = next(s for s in children if s.name == "serve.batch")
        assert tid in ([batch.attrs.get("trace_id")]
                       + list(batch.attrs.get("trace_ids", [])))
        kernels = [s for s in spans if s.parent_id == batch.span_id]
        assert kernels
        assert all(s.name == "kernel.serve.block" for s in kernels)
        assert len(kernels) == service.model.num_layers

    def test_cache_hit_request_has_no_batch_child(self, setup):
        _, _, _, service = setup
        service.query([6])  # fills the cache, untraced
        tracer, _ = obs.enable()
        try:
            response = service.query([6])
        finally:
            obs.disable()
        assert response["cached"] is True
        request = next(
            s for s in tracer.spans() if s.name == "serve.request"
        )
        children = [
            s for s in tracer.spans() if s.parent_id == request.span_id
        ]
        assert children == []

    def test_serve_metrics_published(self, setup):
        _, _, _, service = setup
        _, registry = obs.enable()
        try:
            service.query([1])
            service.query([1])
        finally:
            obs.disable()
        snapshot = registry.snapshot()
        assert snapshot["serve.requests"]["value"] == 2.0
        assert snapshot["serve.cache.hits"]["value"] >= 1.0
        assert snapshot["serve.latency.request_s"]["count"] == 2
        assert "serve.latency.assemble_s" in snapshot
        assert "serve.latency.forward_s" in snapshot
        assert "serve.batch.occupancy" in snapshot


class TestTimeoutsAndShedding:
    def test_timeout_raises(self, setup):
        graph, features, model, _ = setup
        service = InferenceService(
            graph, features, model, max_wait_s=5.0, max_batch=64
        )
        try:
            with pytest.raises(RequestTimeout):
                # the lone request waits out the 5s coalescing window,
                # far past its 10ms bound
                service.query([0], timeout_s=0.01)
        finally:
            service.close()

    def test_admission_rejection_when_queue_full(self, setup):
        import threading

        graph, features, model, _ = setup
        service = InferenceService(
            graph, features, model, max_wait_s=0.0, max_batch=1, max_queue=1
        )
        hold = threading.Event()
        forward = service.batcher.handler

        def slow_handler(batch):
            hold.wait(timeout=10.0)
            forward(batch)

        service.batcher.handler = slow_handler
        try:
            outcomes = []

            def probe(v):
                try:
                    service.query([v], timeout_s=15.0)
                    outcomes.append("ok")
                except AdmissionRejected:
                    outcomes.append("rejected")

            threads = [
                threading.Thread(target=probe, args=(v,)) for v in range(8)
            ]
            for thread in threads:
                thread.start()
            # one request blocks the worker, one sits in the queue; the
            # rest must shed synchronously with AdmissionRejected
            deadline = threading.Event()
            deadline.wait(timeout=0.3)
            hold.set()
            for thread in threads:
                thread.join(timeout=15.0)
            assert "rejected" in outcomes
            assert "ok" in outcomes
        finally:
            hold.set()
            service.close()


class TestHTTPServer:
    def test_get_predict_healthz_stats(self, setup):
        _, _, _, service = setup
        with ServingServer(service, port=0) as server:
            status, doc = get_json(f"{server.url}/v1/predict?vertex=3")
            assert status == 200
            assert doc["vertices"] == [3]
            assert "trace_id" in doc and "classes" in doc
            status, health = get_json(f"{server.url}/healthz")
            assert status == 200 and health["status"] == "ok"
            status, stats = get_json(f"{server.url}/stats.json")
            assert status == 200 and stats["requests"] == 1

    def test_post_predict_batch(self, setup):
        _, _, _, service = setup
        with ServingServer(service, port=0) as server:
            status, doc = post_json(
                f"{server.url}/v1/predict",
                {"vertices": [0, 1, 2], "mode": "embedding"},
            )
            assert status == 200
            assert len(doc["embeddings"]) == 3

    def test_error_mapping(self, setup):
        _, _, _, service = setup
        with ServingServer(service, port=0) as server:
            for path, expected in (
                ("/v1/predict?vertex=abc", 400),  # non-integer id
                ("/v1/predict", 400),  # no vertices
                ("/v1/predict?vertex=999999999", 400),  # out of range
                ("/v1/predict?vertex=0&mode=nope", 400),  # bad mode
                ("/missing", 404),
            ):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    get_json(f"{server.url}{path}")
                assert excinfo.value.code == expected

    def test_stop_closes_batcher(self, setup):
        _, _, _, service = setup
        server = ServingServer(service, port=0)
        server.start()
        server.stop()
        assert not service.batcher._thread.is_alive()
