"""Unit tests for the core-executed trace simulation."""

import numpy as np
import pytest

from repro.graphs import load_dataset
from repro.sim import CoreAggregationSim


@pytest.fixture(scope="module")
def graph():
    return load_dataset("products", scale=0.04, seed=0)


@pytest.fixture(scope="module")
def agg_report(graph):
    return CoreAggregationSim(cache_scale=0.01).run(graph, 32)


class TestAggregationOnly:
    def test_positive_cycles(self, agg_report):
        assert agg_report.cycles > 0
        assert agg_report.seconds > 0

    def test_access_counts_plausible(self, graph, agg_report):
        gathers = graph.num_edges + graph.num_vertices
        lines_per_row = 2  # 32 fp32 = 128B
        # At least every gather line is issued through L1.
        assert agg_report.l1_accesses >= gathers * lines_per_row

    def test_aggregation_fully_stalled(self, agg_report):
        assert agg_report.memory_stall_fraction == 1.0

    def test_update_cycles_zero_without_fusion(self, agg_report):
        assert agg_report.update_cycles == 0.0


class TestFused:
    def test_update_overlaps(self, graph):
        sim = CoreAggregationSim(cache_scale=0.01)
        agg = sim.run(graph, 32)
        fused = CoreAggregationSim(cache_scale=0.01).run(
            graph, 32, fused_update_features=32
        )
        # The fused run is barely longer than aggregation alone — the
        # update hides under the memory time (Figure 13's observation).
        assert fused.cycles < agg.cycles * 1.35
        assert fused.update_cycles > 0

    def test_fused_counts_update_accesses(self, graph):
        agg = CoreAggregationSim(cache_scale=0.01).run(graph, 32)
        fused = CoreAggregationSim(cache_scale=0.01).run(
            graph, 32, fused_update_features=32
        )
        assert fused.l1_accesses > agg.l1_accesses
        assert fused.l2_accesses > agg.l2_accesses

    def test_stall_lower_when_fused(self, graph):
        agg = CoreAggregationSim(cache_scale=0.01).run(graph, 32)
        fused = CoreAggregationSim(cache_scale=0.01).run(
            graph, 32, fused_update_features=128
        )
        assert fused.memory_stall_fraction <= agg.memory_stall_fraction


class TestOutputBufferReuse:
    def test_reuse_cuts_dram_traffic(self):
        """Figure 5c: the reusable per-core buffer drops the a-stream.

        Needs caches that actually hold the buffer between blocks — and
        more than one block per core, or there is nothing to reuse — so
        run a small graph on the 12-core machine with full-size caches.
        """
        from repro.graphs import power_law_graph
        from repro.perf import cascade_lake_12

        small = power_law_graph(800, 6.0, seed=1, name="reuse-twin")
        sim = CoreAggregationSim(cascade_lake_12())
        plain = sim.run(small, 16)
        reused = sim.run(small, 16, reuse_output_buffer=True)
        assert reused.dram_lines < plain.dram_lines
        assert reused.dram_bytes < plain.dram_bytes

    def test_dram_bytes_match_lines(self, agg_report):
        # Every DRAM fill is one whole 64B line; evicted-dirty writebacks
        # are not modeled, so bytes == lines served * 64.
        assert agg_report.dram_bytes >= agg_report.dram_lines * 64


class TestLabelTelemetry:
    def test_label_publishes_metrics_and_span(self, graph):
        from repro import obs

        tracer, metrics = obs.enable()
        try:
            report = CoreAggregationSim(cache_scale=0.01).run(
                graph, 32, label="basic"
            )
        finally:
            obs.disable()
        snapshot = metrics.snapshot()
        assert snapshot["sim.basic.runs"]["value"] == 1.0
        assert (
            snapshot["sim.basic.dram.bytes_served"]["value"]
            == report.dram_bytes
        )
        spans = tracer.spans("sim.basic")
        assert len(spans) == 1
        assert spans[0].counters["dram_bytes"] == report.dram_bytes

    def test_no_label_publishes_nothing(self, graph):
        from repro import obs

        tracer, metrics = obs.enable()
        try:
            CoreAggregationSim(cache_scale=0.01).run(graph, 32)
        finally:
            obs.disable()
        assert not any(n.startswith("sim.") for n in metrics.snapshot())
        assert tracer.spans() == []

    def test_label_without_telemetry_is_noop(self, graph):
        report = CoreAggregationSim(cache_scale=0.01).run(
            graph, 32, label="basic"
        )
        assert report.dram_bytes > 0


class TestOrderSupport:
    def test_custom_order_changes_nothing_structural(self, graph):
        rng = np.random.default_rng(0)
        order = rng.permutation(graph.num_vertices)
        report = CoreAggregationSim(cache_scale=0.01).run(graph, 32, order=order)
        base = CoreAggregationSim(cache_scale=0.01).run(graph, 32)
        # Same number of issued lines either way.
        assert report.detail["issued_lines"] == base.detail["issued_lines"]

    def test_summarize_renders(self, agg_report):
        assert "cycles" in agg_report.summarize()
