"""Hardware stream prefetcher model.

The modeled cores sustain more outstanding misses than their 12 L1 fill
buffers because the L2 stream prefetchers run ahead of sequential
accesses (the basis of ``CORE_EFFECTIVE_MLP`` in
:mod:`repro.sim.core_sim`).  This module models that mechanism so its
contribution can be measured instead of assumed:

* a stream table tracks recent miss addresses per core;
* when ``train_threshold`` consecutive misses advance through adjacent
  lines, a stream is confirmed and the prefetcher issues ``degree``
  lines ahead of it;
* gather traffic (one or two lines per feature vector, then a jump to an
  unrelated vector) trains poorly — exactly why aggregation defeats
  hardware prefetching and the paper adds software prefetch (§4.1) and,
  ultimately, the DMA engine.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List

LINE = 64


@dataclass
class PrefetchStats:
    """Effectiveness counters."""

    accesses: int = 0
    streams_confirmed: int = 0
    prefetches_issued: int = 0
    useful_prefetches: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of accesses served by a prior prefetch."""
        return self.useful_prefetches / self.accesses if self.accesses else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that were ever used."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.useful_prefetches / self.prefetches_issued


class StreamPrefetcher:
    """A next-N-lines stream prefetcher with a small training table.

    Args:
        degree: lines fetched ahead once a stream is confirmed.
        train_threshold: consecutive +1-line steps needed to confirm.
        table_entries: concurrent streams tracked.
        prefetch_buffer_lines: capacity of the prefetch staging storage.
    """

    def __init__(
        self,
        degree: int = 4,
        train_threshold: int = 2,
        table_entries: int = 16,
        prefetch_buffer_lines: int = 128,
    ) -> None:
        if degree <= 0 or train_threshold <= 0 or table_entries <= 0:
            raise ValueError("prefetcher parameters must be positive")
        self.degree = degree
        self.train_threshold = train_threshold
        self.table_entries = table_entries
        self.prefetch_buffer_lines = prefetch_buffer_lines
        self.stats = PrefetchStats()
        # line -> consecutive-hit count, LRU-ordered.
        self._streams: "OrderedDict[int, int]" = OrderedDict()
        self._staged: "OrderedDict[int, bool]" = OrderedDict()

    # ------------------------------------------------------------------
    def access(self, addr: int) -> bool:
        """Observe one demand access; returns True if a prefetch covers it."""
        line = addr // LINE
        self.stats.accesses += 1
        covered = line in self._staged
        if covered:
            del self._staged[line]
            self.stats.useful_prefetches += 1

        # Train: did this access extend a tracked stream?
        prev = line - 1
        if prev in self._streams:
            count = self._streams.pop(prev) + 1
            self._streams[line] = count
            if count >= self.train_threshold:
                self._confirm(line)
        else:
            self._streams[line] = 1
            if len(self._streams) > self.table_entries:
                self._streams.popitem(last=False)
        return covered

    def _confirm(self, line: int) -> None:
        self.stats.streams_confirmed += 1
        for ahead in range(1, self.degree + 1):
            staged_line = line + ahead
            if staged_line in self._staged:
                continue
            self._staged[staged_line] = True
            self.stats.prefetches_issued += 1
            if len(self._staged) > self.prefetch_buffer_lines:
                self._staged.popitem(last=False)

    # ------------------------------------------------------------------
    def run_trace(self, addresses: List[int]) -> PrefetchStats:
        """Feed a whole address trace; returns the accumulated stats."""
        for addr in addresses:
            self.access(addr)
        return self.stats

    def publish_metrics(self, prefix: str = "sim.prefetcher") -> None:
        """Publish effectiveness counters (no-op while telemetry is off)."""
        from ..obs import get_metrics

        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.inc(f"{prefix}.accesses", self.stats.accesses)
        metrics.inc(f"{prefix}.streams_confirmed", self.stats.streams_confirmed)
        metrics.inc(f"{prefix}.prefetches_issued", self.stats.prefetches_issued)
        metrics.inc(f"{prefix}.useful_prefetches", self.stats.useful_prefetches)
        metrics.set_gauge(f"{prefix}.coverage", self.stats.coverage)
        metrics.set_gauge(f"{prefix}.accuracy", self.stats.accuracy)

    def reset(self) -> None:
        self.stats = PrefetchStats()
        self._streams.clear()
        self._staged.clear()


def gather_trace_coverage(
    gather_lines: List[int], degree: int = 4
) -> PrefetchStats:
    """Coverage of a stream prefetcher on a gather-dominated trace.

    Convenience for the §4.1 argument: run the trace through a fresh
    prefetcher and report how little of it streams cover.
    """
    prefetcher = StreamPrefetcher(degree=degree)
    return prefetcher.run_trace(gather_lines)
