"""Algorithm 1: parallel vectorized aggregation with software prefetch.

The paper's ``basic`` kernel:

* output-parallelizes over chunks of ``T`` vertices (no synchronization —
  each task owns a disjoint slice of ``a``),
* dynamically schedules chunks to balance power-law degree skew,
* issues a software prefetch for the vertex ``D`` positions ahead,
  restricted to the first two cache lines of each feature vector because
  the L1 fill buffers are usually full (Section 4.1),
* runs a JIT-specialized inner kernel per layer spec.

The chunk loop itself executes on :class:`repro.parallel.ChunkExecutor`:
by default a single serial worker, or real ``thread`` / ``process``
workers when an executor is supplied.  Every backend is bitwise
equivalent — each vertex row is produced by the same specialized closure
whichever worker runs its chunk.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import get_metrics, get_tracer, publish_counters
from .base import AggregationKernel, KernelStats, resolve_engine, validate_inputs
from .jit import JitKernelCache, KernelSpec
from ..parallel.executor import ChunkExecutor, ExecutionReport
from ..parallel.plan import build_chunk_plan
from ..parallel.workload import BackwardAggregationWorkload, BasicAggregationWorkload

#: Default task size T (vertices per parallel task).
DEFAULT_TASK_SIZE = 64

#: Default prefetch distance D (vertices ahead).
DEFAULT_PREFETCH_DISTANCE = 4

#: Cache lines prefetched per feature vector (Section 4.1: "we empirically
#: choose to prefetch only the first two cache lines").
PREFETCH_LINES_PER_VECTOR = 2


class BasicKernel(AggregationKernel):
    """The Graphite ``basic`` aggregation of Algorithm 1."""

    def __init__(
        self,
        task_size: int = DEFAULT_TASK_SIZE,
        prefetch_distance: int = DEFAULT_PREFETCH_DISTANCE,
        jit_cache: Optional[JitKernelCache] = None,
        executor: Optional[ChunkExecutor] = None,
        engine: Optional[str] = None,
    ) -> None:
        if task_size <= 0:
            raise ValueError(f"task_size must be positive, got {task_size}")
        if prefetch_distance < 0:
            raise ValueError("prefetch_distance must be >= 0")
        self.task_size = task_size
        self.prefetch_distance = prefetch_distance
        self.jit_cache = jit_cache or JitKernelCache()
        self.executor = executor or ChunkExecutor()
        self.engine = resolve_engine(engine)
        self.last_report: Optional[ExecutionReport] = None
        #: (token id, transposed) -> (token weakref, natural order, plan).
        #: Training calls the kernel every layer every epoch with the
        #: default order; rebuilding the identical plan each time is pure
        #: overhead.  Keyed like the JIT cache: the weakref guards against
        #: a look-alike token allocated at a dead token's address.
        self._plan_cache: Dict[
            Tuple[int, bool], Tuple["weakref.ref", np.ndarray, object]
        ] = {}

    name = "basic"

    def _natural_plan(self, graph: CSRGraph, transposed: bool = False):
        """(natural order, chunk plan), memoized per live graph."""
        token = graph.cache_token()
        key = (id(token), transposed)
        hit = self._plan_cache.get(key)
        if hit is not None and hit[0]() is token:
            return hit[1], hit[2]
        order = np.arange(graph.num_vertices, dtype=np.int64)
        base = graph.transpose() if transposed else graph
        plan = build_chunk_plan(base, self.task_size, order)
        self._plan_cache[key] = (weakref.ref(token), order, plan)
        return order, plan

    def aggregate(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        aggregator: str = "gcn",
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, KernelStats]:
        """Aggregate all vertices, optionally in a custom processing order.

        ``order`` is the Section 4.4 hook: kernels walk ``order`` while the
        output stays indexed by original vertex id.
        """
        validate_inputs(graph, h)
        n = graph.num_vertices
        plan = None
        if order is None:
            order, plan = self._natural_plan(graph)
        if len(order) != n:
            raise ValueError("order must cover every vertex exactly once")

        compiled_before = self.jit_cache.compilations
        engine = resolve_engine(self.engine)
        spec = KernelSpec(feature_len=h.shape[1], aggregator=aggregator)
        workload = BasicAggregationWorkload(
            graph,
            h,
            aggregator,
            order,
            prefetch_distance=self.prefetch_distance,
            prefetch_lines=PREFETCH_LINES_PER_VECTOR,
            engine=engine,
        )
        # In-process backends reuse the cached closure; process workers
        # rebuild it from the pickled workload (prepare()).
        if engine == "batched":
            workload.attach_batched(self.jit_cache.specialize_batched(graph, spec))
        else:
            workload.attach_inner(self.jit_cache.specialize(graph, spec))
        if plan is None:
            plan = build_chunk_plan(graph, self.task_size, order)
        with get_tracer().span(
            "kernel.basic",
            aggregator=aggregator,
            vertices=n,
            edges=graph.num_edges,
            features=int(h.shape[1]),
            backend=self.executor.backend,
            workers=self.executor.workers,
            engine=engine,
        ) as span:
            outputs, stats, report = self.executor.run(workload, plan)
            self.last_report = report
            stats.jit_compilations = self.jit_cache.compilations - compiled_before
            stats.flops = 2.0 * stats.gathers * h.shape[1]
            span.add_counters(stats.as_dict())
        publish_counters(get_metrics(), "kernel.basic", stats.as_dict(False))
        return outputs["out"], stats

    def aggregate_backward(
        self,
        graph: CSRGraph,
        grad_a: np.ndarray,
        aggregator: str = "gcn",
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, KernelStats]:
        """Backward aggregation ``grad_h = Âᵀ grad_a``, chunk-parallel.

        The mirror of :meth:`aggregate` over the transposed adjacency:
        the chunk plan balances the *transposed* degrees, the JIT cache
        supplies the backward specializations (closures over the graph's
        cached CSC view), and the same engine/backend knobs apply — so
        ``--engine batched`` covers training end to end.
        """
        validate_inputs(graph, grad_a)
        n = graph.num_vertices
        plan = None
        if order is None:
            order, plan = self._natural_plan(graph, transposed=True)
        if len(order) != n:
            raise ValueError("order must cover every vertex exactly once")

        compiled_before = self.jit_cache.compilations
        engine = resolve_engine(self.engine)
        spec = KernelSpec(feature_len=grad_a.shape[1], aggregator=aggregator)
        workload = BackwardAggregationWorkload(
            graph,
            grad_a,
            aggregator,
            order,
            prefetch_distance=self.prefetch_distance,
            prefetch_lines=PREFETCH_LINES_PER_VECTOR,
            engine=engine,
        )
        if engine == "batched":
            workload.attach_batched(
                self.jit_cache.specialize_batched_backward(graph, spec)
            )
        else:
            workload.attach_inner(self.jit_cache.specialize_backward(graph, spec))
        if plan is None:
            plan = build_chunk_plan(graph.transpose(), self.task_size, order)
        with get_tracer().span(
            "kernel.backward.basic",
            aggregator=aggregator,
            vertices=n,
            edges=graph.num_edges,
            features=int(grad_a.shape[1]),
            backend=self.executor.backend,
            workers=self.executor.workers,
            engine=engine,
        ) as span:
            outputs, stats, report = self.executor.run(workload, plan)
            self.last_report = report
            stats.jit_compilations = self.jit_cache.compilations - compiled_before
            stats.flops = 2.0 * stats.gathers * grad_a.shape[1]
            span.add_counters(stats.as_dict())
        publish_counters(
            get_metrics(), "kernel.backward.basic", stats.as_dict(False)
        )
        return outputs["out"], stats
