"""Unit tests for the reference aggregation numerics (Eq. 1, Table 2)."""

import numpy as np
import pytest

from repro.graphs import star_graph, synthetic_features
from repro.nn import (
    AGGREGATORS,
    aggregate,
    aggregate_backward,
    gather_reduce_reference,
    normalization_factors,
    normalized_adjacency,
)


class TestNormalizationFactors:
    def test_gcn_symmetric_normalization(self, tiny_graph):
        edge, self_f = normalization_factors(tiny_graph, "gcn")
        degs = tiny_graph.degrees() + 1.0
        # Edge 0 <- 1: factor 1/sqrt(d0 * d1).
        expected = 1.0 / np.sqrt(degs[0] * degs[1])
        assert edge[0] == pytest.approx(expected, rel=1e-6)
        assert self_f[0] == pytest.approx(1.0 / degs[0], rel=1e-6)

    def test_mean_uses_destination_degree(self, tiny_graph):
        edge, self_f = normalization_factors(tiny_graph, "mean")
        degs = tiny_graph.degrees() + 1.0
        assert edge[0] == pytest.approx(1.0 / degs[0])
        np.testing.assert_allclose(self_f, 1.0 / degs, rtol=1e-6)

    def test_sum_is_unit(self, tiny_graph):
        edge, self_f = normalization_factors(tiny_graph, "sum")
        np.testing.assert_array_equal(edge, 1.0)
        np.testing.assert_array_equal(self_f, 1.0)

    def test_unknown_aggregator(self, tiny_graph):
        with pytest.raises(ValueError):
            normalization_factors(tiny_graph, "median")


class TestAggregate:
    @pytest.mark.parametrize("aggregator", ["gcn", "mean", "sum"])
    def test_matches_scalar_oracle(self, small_products, aggregator):
        h = synthetic_features(small_products, 12, seed=1)
        fast = aggregate(small_products, h, aggregator)
        slow = gather_reduce_reference(small_products, h, aggregator)
        np.testing.assert_allclose(fast, slow, atol=1e-4)

    def test_mean_averages_constant_features(self, tiny_graph):
        h = np.full((5, 3), 7.0, dtype=np.float32)
        out = aggregate(tiny_graph, h, "mean")
        np.testing.assert_allclose(out, 7.0, rtol=1e-6)

    def test_isolated_vertex_keeps_scaled_self(self, tiny_graph):
        h = np.eye(5, dtype=np.float32) * 4.0
        out = aggregate(tiny_graph, h, "mean")
        # Vertex 4 is isolated: mean over {4} alone = its own features.
        np.testing.assert_allclose(out[4], h[4], rtol=1e-6)

    def test_sum_counts_contributions(self):
        graph = star_graph(3)
        h = np.ones((4, 2), dtype=np.float32)
        out = aggregate(graph, h, "sum")
        # Hub gathers 3 leaves + itself.
        np.testing.assert_allclose(out[0], 4.0)
        # Leaves gather the hub + themselves.
        np.testing.assert_allclose(out[1], 2.0)

    def test_max_aggregation(self, tiny_graph):
        h = np.arange(5, dtype=np.float32).reshape(5, 1)
        out = aggregate(tiny_graph, h, "max")
        assert out[0, 0] == 2.0  # max over {0, 1, 2}
        assert out[3, 0] == 3.0  # max over {3, 0, 1, 2}
        assert out[4, 0] == 4.0  # isolated

    def test_shape_mismatch_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            aggregate(tiny_graph, np.ones((3, 4), dtype=np.float32))


class TestBackward:
    @pytest.mark.parametrize("aggregator", ["gcn", "mean"])
    def test_backward_is_transpose(self, small_uniform, aggregator):
        """<A h, g> == <h, A^T g> for the linear aggregators."""
        rng = np.random.default_rng(0)
        h = rng.standard_normal((small_uniform.num_vertices, 6)).astype(np.float32)
        g = rng.standard_normal((small_uniform.num_vertices, 6)).astype(np.float32)
        forward = aggregate(small_uniform, h, aggregator)
        backward = aggregate_backward(small_uniform, g, aggregator)
        lhs = float((forward * g).sum())
        rhs = float((h * backward).sum())
        assert lhs == pytest.approx(rhs, rel=1e-3)

    def test_max_backward_not_supported(self, tiny_graph):
        with pytest.raises(NotImplementedError):
            aggregate_backward(tiny_graph, np.ones((5, 2), dtype=np.float32), "max")


class TestNormalizedAdjacency:
    def test_spmm_equals_aggregate(self, small_uniform):
        h = synthetic_features(small_uniform, 8, seed=2)
        a_hat = normalized_adjacency(small_uniform, "gcn")
        np.testing.assert_allclose(
            a_hat @ h, aggregate(small_uniform, h, "gcn"), atol=1e-5
        )

    def test_mean_rows_sum_to_one(self, small_uniform):
        a_hat = normalized_adjacency(small_uniform, "mean")
        np.testing.assert_allclose(np.asarray(a_hat.sum(axis=1)).ravel(), 1.0, rtol=1e-5)

    def test_aggregators_constant(self):
        assert set(AGGREGATORS) == {"gcn", "mean", "sum", "max"}
