"""Shared context for the paper-artifact benchmarks.

Each benchmark file regenerates one table or figure; the session-scoped
context caches the dataset twins and their (expensive) reuse profiles so
the whole suite runs in a few minutes.
"""

import numpy as np
import pytest

from repro.bench.figures import BenchContext


@pytest.fixture(autouse=True)
def _seed_numpy_per_test():
    """Reseed NumPy before every benchmark so ablations are reproducible.

    Some experiments draw through the legacy global RNG; without a
    per-test reseed their measurements depend on how many tests ran
    before them in the session.
    """
    np.random.seed(0)


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    return BenchContext(scale=0.5)


def run_experiment(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark and print it."""
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    return result
