"""Unit tests for graph persistence."""

import numpy as np
import pytest

from repro.graphs import (
    GraphError,
    load_edge_list,
    load_npz,
    parse_edge_list,
    save_npz,
)


class TestNpz:
    def test_round_trip(self, tiny_graph, tmp_path):
        path = tmp_path / "tiny.npz"
        save_npz(tiny_graph, path)
        loaded = load_npz(path)
        np.testing.assert_array_equal(loaded.indptr, tiny_graph.indptr)
        np.testing.assert_array_equal(loaded.indices, tiny_graph.indices)
        assert loaded.name == tiny_graph.name

    def test_missing_arrays_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, indptr=np.array([0]))
        with pytest.raises(GraphError):
            load_npz(path)


class TestEdgeList:
    def test_parse_basic(self):
        graph = parse_edge_list("0 1\n1 2\n2 0\n")
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_comments_and_blanks_skipped(self):
        graph = parse_edge_list("# header\n\n% other\n0 1\n")
        assert graph.num_edges == 1

    def test_extra_columns_tolerated(self):
        graph = parse_edge_list("0 1 0.5\n")
        assert graph.num_edges == 1

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            parse_edge_list("0\n")

    def test_non_integer_raises(self):
        with pytest.raises(GraphError):
            parse_edge_list("a b\n")

    def test_negative_id_raises(self):
        with pytest.raises(GraphError):
            parse_edge_list("-1 0\n")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("0 1\n1 0\n")
        graph = load_edge_list(path)
        assert graph.num_edges == 2
        assert graph.name == "graph.txt"
