"""Online GNN inference serving — ROADMAP item 1, observability-first.

The serving plane answers per-vertex / per-batch classification and
embedding queries against a trained model, built from four pieces:

* :mod:`repro.serve.server` — :class:`InferenceService` (the request
  pipeline) and :class:`ServingServer` (the ``ThreadingHTTPServer``
  front end);
* :mod:`repro.serve.batcher` — bounded admission queue + max-size /
  max-wait request coalescing on one worker thread;
* :mod:`repro.serve.cache` — LRU per-vertex result cache with a
  staleness bound;
* :mod:`repro.serve.loadgen` — the benchmark client (open-loop Poisson
  arrivals, closed-loop concurrency sweep, client-side percentiles).

Every request is born with a trace id and renders as the span tree
``serve.request → serve.queue → serve.batch → kernel.*`` when tracing
is on; the ``serve.*`` metric families flow through the active registry
to ``/metrics``, SLO rules, ``repro top``, and the dashboard.
"""

from .batcher import RequestBatcher, ServeRequest
from .cache import EmbeddingCache
from .loadgen import (
    LoadgenResult,
    concurrency_sweep,
    run_loadgen,
    write_results,
)
from .server import (
    DEFAULT_TIMEOUT_S,
    MODES,
    AdmissionRejected,
    InferenceService,
    RequestTimeout,
    ServingServer,
)

__all__ = [
    "AdmissionRejected",
    "DEFAULT_TIMEOUT_S",
    "EmbeddingCache",
    "InferenceService",
    "LoadgenResult",
    "MODES",
    "RequestBatcher",
    "RequestTimeout",
    "ServeRequest",
    "ServingServer",
    "concurrency_sweep",
    "run_loadgen",
    "write_results",
]
