"""Live telemetry plane: metrics exposition endpoint + run monitor.

Everything else in :mod:`repro.obs` is post-hoc — spans, reports, and
dashboards exist only after the run finished.  This module observes a
run *while it is in flight*:

* :class:`MetricsServer` — a background stdlib ``http.server`` that
  renders the active :class:`~repro.obs.metrics.MetricsRegistry` at
  ``/metrics`` (Prometheus text exposition format, version 0.0.4) and
  ``/snapshot.json`` (the raw snapshot plus a *delta view*: per-counter
  rates computed between consecutive scrapes, per-gauge staleness age,
  histogram p50/p95/p99).  ``repro train --serve-metrics PORT`` starts
  one for the duration of the run.
* :class:`LiveRunMonitor` — tails the schema-versioned epoch-event
  JSONL of an in-progress run (tolerating the partially flushed final
  line) and renders a refreshing terminal view: loss/accuracy trend
  sparklines, per-layer gradient norms, ``proc.*`` resource gauges
  (scraped from a ``MetricsServer`` or read from an in-process
  registry), the executor's live queue phase, and any firing SLO rules
  (:mod:`repro.obs.rules`).  ``repro top --follow run.jsonl`` drives it.

Both follow the package's null-object contract: :data:`NULL_SERVER`
answers ``start``/``stop`` with no-ops, never opens a socket, and never
spawns a thread, so a run without ``--serve-metrics`` pays nothing.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional

from .events import EventTail
from .rules import RuleEngine

logger = logging.getLogger(__name__)

#: Prefix every exposed Prometheus metric name carries.
PROMETHEUS_PREFIX = "repro_"

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: A gauge older than this (seconds) is flagged stale in live views.
DEFAULT_STALE_AFTER_S = 5.0

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Metric-name prefixes :class:`LiveRunMonitor` renders with bespoke
#: sections; anything else falls through to the generic family view.
_NATIVE_PLANES = ("train.", "proc.", "executor.", "serve.")


# ----------------------------------------------------------------------
# Prometheus text exposition
def prometheus_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus charset.

    ``kernel.basic.gathers`` -> ``repro_kernel_basic_gathers``; any
    character outside ``[a-zA-Z0-9_:]`` becomes ``_``.
    """
    sanitized = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    return PROMETHEUS_PREFIX + sanitized


def _prom_number(value: Any) -> str:
    if value is None:
        return "NaN"
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def render_prometheus(snapshot: Mapping[str, Mapping[str, Any]]) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    Counters expose ``<name>_total``; gauges expose ``<name>``;
    histograms expose a summary — ``{quantile="0.5|0.95|0.99"}`` series
    plus ``_sum`` / ``_count`` — from the registry's own percentile
    estimates.  Every family carries ``# HELP`` (the original dotted
    name) and ``# TYPE`` lines, and the document ends with ``# EOF``-
    less plain text exactly as the 0.0.4 format expects.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        doc = snapshot[name]
        kind = doc.get("type")
        base = prometheus_name(name)
        if kind == "counter":
            lines.append(f"# HELP {base}_total registry counter {name}")
            lines.append(f"# TYPE {base}_total counter")
            lines.append(f"{base}_total {_prom_number(doc.get('value'))}")
        elif kind == "gauge":
            lines.append(f"# HELP {base} registry gauge {name}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_prom_number(doc.get('value'))}")
        elif kind == "histogram":
            lines.append(f"# HELP {base} registry histogram {name}")
            lines.append(f"# TYPE {base} summary")
            for q_key, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
                lines.append(
                    f'{base}{{quantile="{quantile}"}} '
                    f"{_prom_number(doc.get(q_key))}"
                )
            lines.append(f"{base}_sum {_prom_number(doc.get('total'))}")
            count = doc.get("count", 0)
            lines.append(f"{base}_count {_prom_number(count)}")
        else:  # unknown metric kind: expose the value as an untyped sample
            lines.append(f"# TYPE {base} untyped")
            lines.append(f"{base} {_prom_number(doc.get('value'))}")
    return "\n".join(lines) + "\n"


def delta_snapshot(
    current: Mapping[str, Mapping[str, Any]],
    previous: Optional[Mapping[str, Mapping[str, Any]]],
    elapsed_s: Optional[float],
    now_monotonic: Optional[float] = None,
) -> Dict[str, Any]:
    """The ``/snapshot.json`` document: snapshot + between-scrape deltas.

    Each counter gains ``rate_per_s`` (delta over the elapsed time since
    the previous scrape; ``None`` on the first one), each gauge gains
    ``age_s`` (seconds since its last write, from the monotonic update
    timestamp — a dead sampler thread shows up as a growing age), and
    histograms carry their p50/p95/p99 through unchanged.
    """
    now = time.monotonic() if now_monotonic is None else now_monotonic
    metrics: Dict[str, Dict[str, Any]] = {}
    for name, doc in current.items():
        out = dict(doc)
        kind = doc.get("type")
        if kind == "counter":
            rate = None
            if previous is not None and elapsed_s and elapsed_s > 0:
                before = (previous.get(name) or {}).get("value")
                if isinstance(before, (int, float)):
                    rate = (float(doc.get("value", 0.0)) - float(before)) / elapsed_s
            out["rate_per_s"] = rate
        elif kind == "gauge":
            updated = doc.get("updated_monotonic")
            out["age_s"] = (
                max(0.0, now - updated) if isinstance(updated, (int, float)) else None
            )
        metrics[name] = out
    return {
        "monotonic": now,
        "elapsed_s": elapsed_s,
        "metrics": metrics,
    }


# ----------------------------------------------------------------------
# Exposition endpoint
class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to the owning :class:`MetricsServer`."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        owner: "MetricsServer" = self.server.owner  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(owner.registry.snapshot()).encode()
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/snapshot.json":
            body = json.dumps(
                owner.delta_snapshot(), allow_nan=True
            ).encode()
            self._reply(200, "application/json", body)
        elif path in ("/", "/healthz"):
            body = (
                "repro live metrics endpoint\n"
                "GET /metrics       Prometheus text exposition\n"
                "GET /snapshot.json snapshot with between-scrape deltas\n"
            ).encode()
            self._reply(200, "text/plain; charset=utf-8", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("metrics-server: " + format, *args)


class MetricsServer:
    """Background HTTP exposition of a live metrics registry.

    Binds ``host:port`` (``port=0`` picks an ephemeral port, reported by
    :attr:`port` / :attr:`url` after :meth:`start`) and serves scrapes
    from a daemon thread, so the instrumented run is never blocked.
    Usable as a context manager.
    """

    enabled = True

    def __init__(self, registry, port: int = 0, host: str = "127.0.0.1") -> None:
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._scrape_lock = threading.Lock()
        self._last_snapshot: Optional[Dict[str, Dict[str, Any]]] = None
        self._last_monotonic: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> Optional[int]:
        """The bound port (None before :meth:`start`)."""
        return self._httpd.server_address[1] if self._httpd else None

    @property
    def url(self) -> Optional[str]:
        return f"http://{self.host}:{self.port}" if self._httpd else None

    def delta_snapshot(self) -> Dict[str, Any]:
        """Snapshot + deltas vs the previous scrape (advances the state)."""
        now = time.monotonic()
        current = self.registry.snapshot()
        with self._scrape_lock:
            elapsed = (
                now - self._last_monotonic
                if self._last_monotonic is not None
                else None
            )
            document = delta_snapshot(current, self._last_snapshot, elapsed, now)
            self._last_snapshot = current
            self._last_monotonic = now
        return document

    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        """Bind the socket and spawn the serving thread (idempotent)."""
        if self._httpd is None:
            httpd = ThreadingHTTPServer(
                (self.host, self._requested_port), _Handler
            )
            httpd.daemon_threads = True
            httpd.owner = self  # type: ignore[attr-defined]
            self._httpd = httpd
            self._thread = threading.Thread(
                target=httpd.serve_forever,
                name="repro-metrics-server",
                daemon=True,
            )
            self._thread.start()
            logger.info("metrics server listening on %s", self.url)
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            if self._thread is not None:
                self._thread.join(timeout=5.0)
                self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class NullMetricsServer:
    """Disabled endpoint: no socket, no thread, no scrape state."""

    enabled = False
    port = None
    url = None

    def start(self) -> "NullMetricsServer":
        return self

    def stop(self) -> None:
        pass

    def __enter__(self) -> "NullMetricsServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SERVER = NullMetricsServer()


def scrape_snapshot(url: str, timeout_s: float = 2.0) -> Dict[str, Any]:
    """GET ``<url>/snapshot.json`` and return the parsed document."""
    target = url.rstrip("/") + "/snapshot.json"
    with urllib.request.urlopen(target, timeout=timeout_s) as response:
        return json.loads(response.read().decode())


# ----------------------------------------------------------------------
# Terminal run monitor
def sparkline(values: List[float], width: int = 40) -> str:
    """Unicode block sparkline of the last ``width`` finite values."""
    finite = [v for v in values if v is not None and math.isfinite(v)]
    if not finite:
        return ""
    tail = finite[-width:]
    lo, hi = min(tail), max(tail)
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(tail)
    return "".join(
        _SPARK_BLOCKS[
            min(len(_SPARK_BLOCKS) - 1, int((v - lo) / span * len(_SPARK_BLOCKS)))
        ]
        for v in tail
    )


def _fmt_bytes(value: Optional[float]) -> str:
    if value is None or not math.isfinite(value):
        return "?"
    for cut, suffix in ((1e9, "GB"), (1e6, "MB"), (1e3, "KB")):
        if abs(value) >= cut:
            return f"{value / cut:.1f} {suffix}"
    return f"{value:.0f} B"


def _event_snapshot(event: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Pseudo registry snapshot of one epoch event's ``train.*`` plane.

    Mirrors the gauges :class:`~repro.nn.training.Trainer` publishes, so
    one rule grammar covers both the in-process epoch hook and the
    post-hoc / cross-process monitor replay.
    """
    snapshot = {
        "train.epoch": {"type": "gauge", "value": float(event.get("epoch", 0))},
        "train.loss": {"type": "gauge", "value": event.get("loss")},
        "train.train_accuracy": {
            "type": "gauge", "value": event.get("train_accuracy"),
        },
        "train.wall_time_s": {
            "type": "gauge", "value": event.get("wall_time_s"),
        },
    }
    if event.get("val_accuracy") is not None:
        snapshot["train.val_accuracy"] = {
            "type": "gauge", "value": event.get("val_accuracy"),
        }
    return snapshot


class LiveRunMonitor:
    """Terminal view of an in-progress (or finished) training run.

    Args:
        events_path: the run's epoch-event JSONL (may still be growing).
        metrics_url: base URL of a :class:`MetricsServer` to scrape for
            ``proc.*`` / ``executor.*`` gauges (cross-process case).
        registry: an in-process registry to read instead of scraping.
        rules: optional :class:`~repro.obs.rules.RuleEngine`; evaluated
            once per newly observed epoch (event-derived ``train.*``
            plane merged over the scraped metrics), so ``for K`` streaks
            advance in epochs exactly as in the trainer hook.
        stale_after_s: gauge age beyond which the view flags STALE.
    """

    def __init__(
        self,
        events_path: str,
        metrics_url: Optional[str] = None,
        registry=None,
        rules: Optional[RuleEngine] = None,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
    ) -> None:
        self.tail = EventTail(events_path)
        self.metrics_url = metrics_url
        self.registry = registry
        self.rules = rules
        self.stale_after_s = stale_after_s
        self.events: List[Dict[str, Any]] = []
        self.metrics: Dict[str, Dict[str, Any]] = {}
        self.polls = 0

    # ------------------------------------------------------------------
    def _scrape(self) -> Dict[str, Dict[str, Any]]:
        if self.registry is not None:
            now = time.monotonic()
            return delta_snapshot(self.registry.snapshot(), None, None, now)[
                "metrics"
            ]
        if self.metrics_url:
            try:
                return scrape_snapshot(self.metrics_url).get("metrics", {})
            except (OSError, ValueError) as error:
                logger.debug("scrape failed: %s", error)
        return {}

    def poll(self) -> List[Dict[str, Any]]:
        """Ingest new events + a metrics scrape; evaluate rules per epoch."""
        self.polls += 1
        new_events = self.tail.read_new()
        self.metrics = self._scrape()
        if self.rules is not None:
            if new_events:
                for event in new_events:
                    merged = dict(self.metrics)
                    merged.update(_event_snapshot(event))
                    self.rules.evaluate(merged)
            elif not self.events and self.metrics:
                # No event stream at all: pure metrics monitoring.
                self.rules.evaluate(self.metrics)
        self.events.extend(new_events)
        return new_events

    # ------------------------------------------------------------------
    def _gauge(self, name: str) -> Optional[float]:
        doc = self.metrics.get(name)
        value = doc.get("value") if doc else None
        return float(value) if isinstance(value, (int, float)) else None

    def _gauge_age(self, name: str) -> Optional[float]:
        doc = self.metrics.get(name)
        age = doc.get("age_s") if doc else None
        return float(age) if isinstance(age, (int, float)) else None

    def _counter(self, name: str) -> Optional[float]:
        doc = self.metrics.get(name)
        if doc and doc.get("type") == "counter":
            value = doc.get("value")
            return float(value) if isinstance(value, (int, float)) else None
        return None

    def _rate(self, name: str) -> Optional[float]:
        doc = self.metrics.get(name)
        rate = doc.get("rate_per_s") if doc else None
        return float(rate) if isinstance(rate, (int, float)) else None

    def _hist(self, name: str) -> Optional[Dict[str, Any]]:
        doc = self.metrics.get(name)
        return doc if doc and doc.get("type") == "histogram" else None

    def render(self) -> str:
        """One frame of the live view (plain text, no ANSI)."""
        lines: List[str] = []
        meta = (self.tail.header or {}).get("run") or {}
        title = " ".join(
            f"{key}={value}"
            for key, value in meta.items()
            if value is not None and key in
            ("command", "dataset", "model", "epochs", "workers", "backend", "engine")
        )
        lines.append(f"== repro top == {title}".rstrip())

        if self.events:
            last = self.events[-1]
            losses = [e.get("loss") for e in self.events]
            accs = [e.get("train_accuracy") for e in self.events]
            val = last.get("val_accuracy")
            lines.append(
                f"epoch {last.get('epoch'):>4}  "
                f"loss {last.get('loss'):.4f}  "
                f"acc {last.get('train_accuracy'):.3f}"
                + (f"  val {val:.3f}" if val is not None else "")
                + f"  {last.get('wall_time_s', 0.0):.3f}s/epoch"
            )
            lines.append(f"loss  {sparkline(losses)}")
            lines.append(f"acc   {sparkline(accs)}")
            grad_norms = last.get("grad_norms") or {}
            if grad_norms:
                cells = []
                for layer in sorted(grad_norms, key=str):
                    entry = grad_norms[layer] or {}
                    weight = entry.get("weight")
                    if isinstance(weight, (int, float)):
                        cells.append(f"L{layer}:{weight:.3g}")
                if cells:
                    lines.append("grad|w| " + "  ".join(cells))
            issues = [
                f"epoch {e.get('epoch')}: {kind}"
                for e in self.events
                for kind in (e.get("health_issues") or [])
            ]
            for issue in issues[-3:]:
                lines.append(f"health  {issue}")
        else:
            lines.append("(no epoch events yet)")

        rss = self._gauge("proc.rss_bytes")
        if rss is not None:
            cpu = self._gauge("proc.cpu_percent")
            threads = self._gauge("proc.num_threads")
            age = self._gauge_age("proc.rss_bytes")
            stale = (
                "  [STALE]"
                if age is not None and age > self.stale_after_s
                else ""
            )
            lines.append(
                f"proc  rss {_fmt_bytes(rss)}"
                + (f"  cpu {cpu:.0f}%" if cpu is not None else "")
                + (f"  threads {threads:.0f}" if threads is not None else "")
                + stale
            )

        inflight = self._gauge("executor.inflight")
        queue_depth = self._gauge("executor.queue_depth")
        live_epoch = self._gauge("train.epoch")
        phase_bits = []
        if live_epoch is not None:
            phase_bits.append(f"epoch {live_epoch:.0f}")
        if inflight is not None:
            phase_bits.append(f"{inflight:.0f} worker(s) in flight")
        if queue_depth is not None:
            phase_bits.append(f"{queue_depth:.0f} chunk(s) queued")
        if phase_bits:
            lines.append("phase " + ", ".join(phase_bits))

        lines.extend(self._render_serve())
        lines.extend(self._render_other_families())

        if self.rules is not None:
            active = self.rules.active
            if active:
                lines.append(f"SLO   {len(active)} rule(s) FIRING: "
                             + ", ".join(active))
                for alert in self.rules.alerts[-3:]:
                    lines.append(f"  {alert.message}")
            else:
                lines.append(
                    f"SLO   ok ({len(self.rules.rules)} rule(s), "
                    f"{self.rules.evaluations} evaluation(s))"
                )
        return "\n".join(lines)

    def _render_serve(self) -> List[str]:
        """The serving plane, when ``serve.*`` metrics are present."""
        requests = self._counter("serve.requests")
        if requests is None:
            return []
        lines: List[str] = []
        rate = self._rate("serve.requests")
        rejected = self._counter("serve.rejected") or 0.0
        errors = self._counter("serve.errors") or 0.0
        bits = [f"requests {requests:.0f}"]
        if rate is not None:
            bits.append(f"{rate:.1f} req/s")
        if errors:
            bits.append(f"{errors:.0f} error(s)")
        if rejected:
            bits.append(f"{rejected:.0f} rejected")
        depth = self._gauge("serve.queue_depth")
        inflight = self._gauge("serve.inflight")
        if depth is not None:
            bits.append(f"queue {depth:.0f}")
        if inflight is not None and inflight:
            bits.append(f"inflight {inflight:.0f}")
        lines.append("serve " + "  ".join(bits))
        hits = self._counter("serve.cache.hits")
        misses = self._counter("serve.cache.misses")
        if hits is not None or misses is not None:
            total = (hits or 0.0) + (misses or 0.0)
            hit_pct = 100.0 * (hits or 0.0) / total if total else 0.0
            size = self._gauge("serve.cache.size")
            lines.append(
                f"cache hit {hit_pct:.0f}% ({(hits or 0):.0f}/{total:.0f})"
                + (f"  size {size:.0f}" if size is not None else "")
            )
        latency = self._hist("serve.latency.request_s")
        if latency:
            lines.append(
                "lat   p50 {:.1f} ms  p95 {:.1f} ms  p99 {:.1f} ms "
                "({} sample(s))".format(
                    (latency.get("p50") or 0.0) * 1e3,
                    (latency.get("p95") or 0.0) * 1e3,
                    (latency.get("p99") or 0.0) * 1e3,
                    latency.get("count", 0),
                )
            )
        occupancy = self._hist("serve.batch.occupancy")
        if occupancy:
            lines.append(
                f"batch occupancy p50 {occupancy.get('p50') or 0:.1f}  "
                f"p95 {occupancy.get('p95') or 0:.1f}  "
                f"({occupancy.get('count', 0)} batch(es))"
            )
        return lines

    def _render_other_families(self, max_lines: int = 8) -> List[str]:
        """Generic one-line-per-family view of unrecognized metrics.

        Anything outside the planes the view renders natively
        (``train.*`` / ``proc.*`` / ``executor.*`` / ``serve.*``) is
        grouped by its first dotted segment, so new subsystems show up
        in ``repro top`` the day they start publishing, without a
        bespoke section.
        """
        families: Dict[str, List[str]] = {}
        for name in sorted(self.metrics):
            if name.startswith(_NATIVE_PLANES):
                continue
            doc = self.metrics[name]
            kind = doc.get("type")
            short = name.split(".", 1)[1] if "." in name else name
            if kind == "counter":
                rate = doc.get("rate_per_s")
                cell = f"{short} {doc.get('value', 0):g}"
                if isinstance(rate, (int, float)):
                    cell += f" ({rate:.1f}/s)"
            elif kind == "gauge":
                value = doc.get("value")
                cell = (
                    f"{short}={value:g}"
                    if isinstance(value, (int, float))
                    else f"{short}=?"
                )
            elif kind == "histogram":
                cell = (
                    f"{short} p50={doc.get('p50') or 0:.3g} "
                    f"p99={doc.get('p99') or 0:.3g} n={doc.get('count', 0)}"
                )
            else:
                cell = f"{short}={doc.get('value')}"
            families.setdefault(name.split(".", 1)[0], []).append(cell)
        lines: List[str] = []
        for family in sorted(families):
            if len(lines) >= max_lines:
                lines.append(
                    f"…     {len(families) - max_lines} more familie(s)"
                )
                break
            lines.append(f"{family[:5]:<5} " + "  ".join(families[family][:6]))
        return lines

    # ------------------------------------------------------------------
    def follow(
        self,
        interval_s: float = 1.0,
        refresh_limit: Optional[int] = None,
        stream=None,
        clear: bool = True,
    ) -> int:
        """Poll + render in a loop (``repro top --follow``).

        Stops after ``refresh_limit`` frames when given (testing /
        bounded watches); otherwise runs until KeyboardInterrupt.
        Returns the number of frames rendered.
        """
        import sys

        stream = sys.stdout if stream is None else stream
        frames = 0
        try:
            while True:
                self.poll()
                if clear:
                    stream.write("\x1b[2J\x1b[H")
                stream.write(self.render() + "\n")
                stream.flush()
                frames += 1
                if refresh_limit is not None and frames >= refresh_limit:
                    break
                time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        return frames
