"""Figure 14: feature-compression speedup vs sparsity level."""

import pytest
from conftest import run_experiment

from repro.bench.figures import fig14_compression_sweep


@pytest.mark.parametrize("training", [False, True], ids=["inference", "training"])
def test_fig14_compression(benchmark, ctx, training):
    exp = run_experiment(benchmark, fig14_compression_sweep, ctx, training)
    values = {r.label: r.measured for r in exp.rows}
    for name in ("products", "wikipedia", "papers", "twitter"):
        assert values[f"{name} @10%"] < 1.0
        assert values[f"{name} @90%"] > 1.3
        assert exp.shape_holds([f"{name} @{s}%" for s in (10, 30, 50, 70, 90)])
