"""Task partitioning, load-balance analysis, and graph sharding.

Two planes live here:

1. **Thread scheduling analysis** — Section 4.1's motivation.  "The
   processing time of a chunk correlates with the degrees of the
   vertices in it.  The degrees can vary significantly and sometimes
   follow a power law distribution.  To balance the load among threads,
   we schedule the parallel tasks with OpenMP's dynamic scheduler."
   This plane splits a vertex set into tasks of ``T`` vertices, weighs
   each task by its gather work (sum of degrees + 1), and compares
   static thread assignment against a dynamic (list-scheduler) one.

2. **Graph partitioning for sharded training** — an edge-cut
   partitioner (contiguous / BFS-grow / LDG greedy, plus an optional
   boundary-refinement pass) and a shard builder that rewrites each
   partition's rows into a self-contained local CSR with halo (ghost)
   vertex maps.  The sharded trainer in ``repro.parallel.sharded``
   consumes these shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .csr import CSRGraph, GraphError


@dataclass(frozen=True)
class ScheduleReport:
    """Per-thread work under one scheduling policy."""

    policy: str
    thread_work: np.ndarray

    @property
    def makespan(self) -> float:
        return float(self.thread_work.max()) if len(self.thread_work) else 0.0

    @property
    def mean_work(self) -> float:
        return float(self.thread_work.mean()) if len(self.thread_work) else 0.0

    @property
    def imbalance(self) -> float:
        """makespan / mean — 1.0 is a perfectly balanced schedule."""
        if self.mean_work == 0:
            return 1.0
        return self.makespan / self.mean_work


def task_weights(
    graph: CSRGraph, task_size: int, order: Optional[np.ndarray] = None
) -> np.ndarray:
    """Gather work (degree + 1 summed) of each T-vertex task."""
    if task_size <= 0:
        raise ValueError("task_size must be positive")
    degs = graph.degrees()
    if order is not None:
        degs = degs[order]
    work = (degs + 1).astype(np.float64)
    n = graph.num_vertices
    num_tasks = (n + task_size - 1) // task_size
    if num_tasks == 0:
        return np.zeros(0, dtype=np.float64)
    starts = np.arange(num_tasks, dtype=np.int64) * task_size
    return np.add.reduceat(work, starts)


def static_schedule(weights: np.ndarray, threads: int) -> ScheduleReport:
    """Contiguous-block task assignment (OpenMP ``schedule(static)``).

    Without a chunk size, OpenMP's static schedule divides the iteration
    space into one contiguous block per thread (block ``ceil(n/threads)``
    except possibly the last).  Cyclic round-robin — ``schedule(static,1)``
    — is modelled separately by :func:`static_cyclic_schedule`.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    thread_work = np.zeros(threads)
    num_tasks = len(weights)
    block = (num_tasks + threads - 1) // threads if num_tasks else 0
    for thread in range(threads):
        chunk = weights[thread * block : (thread + 1) * block]
        if len(chunk):
            thread_work[thread] = chunk.sum()
    return ScheduleReport(policy="static", thread_work=thread_work)


def static_cyclic_schedule(weights: np.ndarray, threads: int) -> ScheduleReport:
    """Cyclic task assignment (OpenMP ``schedule(static,1)``).

    Task ``i`` goes to thread ``i % threads`` — the round-robin model
    this module previously (incorrectly) used for plain ``static``.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    thread_work = np.zeros(threads)
    for task, weight in enumerate(weights):
        thread_work[task % threads] += weight
    return ScheduleReport(policy="static_cyclic", thread_work=thread_work)


def dynamic_schedule(weights: np.ndarray, threads: int) -> ScheduleReport:
    """Work-stealing-style dynamic assignment.

    Models OpenMP's dynamic scheduler as a list scheduler: each thread
    grabs the next task when it goes idle, which is equivalent to always
    assigning the next task to the least-loaded thread.
    """
    if threads <= 0:
        raise ValueError("threads must be positive")
    thread_work = np.zeros(threads)
    for weight in weights:
        thread_work[int(np.argmin(thread_work))] += weight
    return ScheduleReport(policy="dynamic", thread_work=thread_work)


def balance_comparison(
    graph: CSRGraph,
    task_size: int = 64,
    threads: int = 28,
    order: Optional[np.ndarray] = None,
) -> "tuple[ScheduleReport, ScheduleReport]":
    """(static, dynamic) schedules of a graph's aggregation tasks."""
    weights = task_weights(graph, task_size, order=order)
    return static_schedule(weights, threads), dynamic_schedule(weights, threads)


def chunk_boundaries(num_vertices: int, task_size: int) -> List[slice]:
    """The T-vertex chunk slices of Algorithm 1's parallel loop."""
    if task_size <= 0:
        raise ValueError("task_size must be positive")
    return [
        slice(start, min(start + task_size, num_vertices))
        for start in range(0, num_vertices, task_size)
    ]


# ----------------------------------------------------------------------
# Edge-cut partitioning for sharded training
# ----------------------------------------------------------------------

PARTITION_METHODS = ("contiguous", "bfs", "greedy")


def _flat_positions(indptr: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Flat ``indices`` positions of all rows in ``vertices`` (in order)."""
    counts = indptr[vertices + 1] - indptr[vertices]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(indptr[vertices], counts) + offsets


def _undirected_csr(graph: CSRGraph) -> Tuple[np.ndarray, np.ndarray]:
    """CSR arrays of the symmetrized adjacency A ∪ Aᵀ (no self loops)."""
    n = graph.num_vertices
    dst = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    src = graph.indices
    rows = np.concatenate([dst, src])
    cols = np.concatenate([src, dst])
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    if len(rows):
        pairs = np.unique(np.stack([rows, cols], axis=1), axis=0)
        rows, cols = pairs[:, 0], pairs[:, 1]
    counts = np.bincount(rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, cols.astype(np.int64)


@dataclass(frozen=True)
class PartitionResult:
    """A vertex → part assignment plus its quality statistics."""

    assignment: np.ndarray
    num_parts: int
    method: str

    def part_sizes(self) -> np.ndarray:
        return np.bincount(self.assignment, minlength=self.num_parts)

    @property
    def balance(self) -> float:
        """max part size / mean part size — 1.0 is perfect."""
        sizes = self.part_sizes()
        mean = sizes.mean()
        return float(sizes.max() / mean) if mean else 1.0

    def edge_cut(self, graph: CSRGraph) -> int:
        """Number of directed edges whose endpoints land in different parts."""
        n = graph.num_vertices
        dst = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
        return int((self.assignment[dst] != self.assignment[graph.indices]).sum())

    def cut_fraction(self, graph: CSRGraph) -> float:
        if graph.num_edges == 0:
            return 0.0
        return self.edge_cut(graph) / graph.num_edges


def _bfs_assignment(
    graph: CSRGraph, num_parts: int, capacities: np.ndarray
) -> np.ndarray:
    """Grow each part as a BFS ball over the undirected adjacency."""
    n = graph.num_vertices
    u_indptr, u_indices = _undirected_csr(graph)
    u_degs = np.diff(u_indptr)
    # Seed from high-degree vertices: hubs anchor parts so their large
    # neighborhoods become local rather than halo traffic.
    order = np.argsort(-u_degs, kind="stable")
    assignment = np.full(n, -1, dtype=np.int64)
    seed_ptr = 0
    for part in range(num_parts):
        capacity = int(capacities[part])
        filled = 0
        frontier = np.empty(0, dtype=np.int64)
        while filled < capacity:
            if len(frontier) == 0:
                while seed_ptr < n and assignment[order[seed_ptr]] != -1:
                    seed_ptr += 1
                if seed_ptr >= n:
                    return assignment
                seed = order[seed_ptr]
                assignment[seed] = part
                filled += 1
                frontier = np.array([seed], dtype=np.int64)
                continue
            flat = _flat_positions(u_indptr, frontier)
            nbrs = u_indices[flat]
            nbrs = np.unique(nbrs[assignment[nbrs] == -1])
            if len(nbrs) == 0:
                frontier = np.empty(0, dtype=np.int64)
                continue
            chosen = nbrs[: capacity - filled]
            assignment[chosen] = part
            filled += len(chosen)
            frontier = chosen
    return assignment


def _greedy_assignment(
    graph: CSRGraph, num_parts: int, capacities: np.ndarray
) -> np.ndarray:
    """Linear deterministic greedy (LDG) streaming assignment.

    Vertices stream in degree-descending order; each goes to the part
    maximizing ``|N(v) ∩ part| * (1 - load/capacity)`` — neighbors pull,
    fullness pushes back (Stanton & Kliot's LDG heuristic).
    """
    n = graph.num_vertices
    u_indptr, u_indices = _undirected_csr(graph)
    u_degs = np.diff(u_indptr)
    order = np.argsort(-u_degs, kind="stable")
    assignment = np.full(n, -1, dtype=np.int64)
    loads = np.zeros(num_parts, dtype=np.int64)
    caps = capacities.astype(np.float64)
    for v in order:
        nbr_parts = assignment[u_indices[u_indptr[v] : u_indptr[v + 1]]]
        nbr_parts = nbr_parts[nbr_parts != -1]
        penalty = 1.0 - loads / caps
        if len(nbr_parts):
            score = np.bincount(nbr_parts, minlength=num_parts) * penalty
        else:
            score = penalty
        score[loads >= capacities] = -np.inf
        assignment[v] = int(np.argmax(score))
        loads[assignment[v]] += 1
    return assignment


def _refine_assignment(
    graph: CSRGraph,
    assignment: np.ndarray,
    num_parts: int,
    capacities: np.ndarray,
    passes: int,
) -> np.ndarray:
    """METIS-flavoured boundary refinement: greedily move boundary
    vertices to the neighboring part with the highest edge-cut gain,
    respecting part capacities.  Deterministic (gain-descending, vertex
    id as tiebreak)."""
    n = graph.num_vertices
    if n == 0 or passes <= 0:
        return assignment
    u_indptr, u_indices = _undirected_csr(graph)
    u_degs = np.diff(u_indptr)
    dst = np.repeat(np.arange(n, dtype=np.int64), u_degs)
    assignment = assignment.copy()
    loads = np.bincount(assignment, minlength=num_parts)
    for _ in range(passes):
        nbr_part_counts = np.zeros((n, num_parts), dtype=np.int64)
        np.add.at(nbr_part_counts, (dst, assignment[u_indices]), 1)
        current = nbr_part_counts[np.arange(n), assignment]
        best_part = np.argmax(nbr_part_counts, axis=1)
        gain = nbr_part_counts[np.arange(n), best_part] - current
        movers = np.flatnonzero((gain > 0) & (best_part != assignment))
        if len(movers) == 0:
            break
        movers = movers[np.lexsort((movers, -gain[movers]))]
        moved = 0
        for v in movers:
            target = int(best_part[v])
            source = int(assignment[v])
            if loads[target] >= capacities[target] or loads[source] <= 1:
                continue
            assignment[v] = target
            loads[source] -= 1
            loads[target] += 1
            moved += 1
        if moved == 0:
            break
    return assignment


def edge_cut_partition(
    graph: CSRGraph,
    num_parts: int,
    method: str = "greedy",
    refine_passes: int = 1,
) -> PartitionResult:
    """Partition vertices into ``num_parts`` balanced parts, minimizing
    (heuristically) the number of cross-part edges.

    Methods: ``contiguous`` (vertex-range blocks, the trivial baseline),
    ``bfs`` (grow each part as a BFS ball), ``greedy`` (LDG streaming).
    All methods cap parts at ``ceil(n / num_parts)`` vertices, then run
    ``refine_passes`` rounds of capacity-constrained boundary moves.
    """
    n = graph.num_vertices
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    if num_parts > max(1, n):
        raise ValueError(f"num_parts={num_parts} exceeds num_vertices={n}")
    if method not in PARTITION_METHODS:
        raise ValueError(
            f"unknown partition method {method!r}; choose from {PARTITION_METHODS}"
        )
    base, extra = divmod(n, num_parts)
    capacities = base + (np.arange(num_parts) < extra).astype(np.int64)
    if method == "contiguous" or num_parts == 1:
        assignment = (np.arange(n, dtype=np.int64) * num_parts) // max(n, 1)
    elif method == "bfs":
        assignment = _bfs_assignment(graph, num_parts, capacities)
    else:
        assignment = _greedy_assignment(graph, num_parts, capacities)
    if num_parts > 1 and method != "contiguous":
        assignment = _refine_assignment(
            graph, assignment, num_parts, capacities, refine_passes
        )
    return PartitionResult(assignment=assignment, num_parts=num_parts, method=method)


# ----------------------------------------------------------------------
# Shard construction
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GraphShard:
    """One partition's rows as a self-contained local CSR.

    Rows are the part's owned vertices in ascending global order; column
    ids live in the shard-local space ``[0, num_local + num_halo)`` where
    ids below ``num_local`` are owned vertices (position in
    ``local_vertices``) and the rest are halo (ghost) vertices (position
    in ``halo_vertices``, offset by ``num_local``).  ``edge_positions``
    maps each shard edge back to its position in the global ``indices``
    array, so any per-edge global array (e.g. ψ normalization factors)
    restricts to the shard via ``array[edge_positions]``.
    """

    part: int
    local_vertices: np.ndarray
    halo_vertices: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    edge_positions: np.ndarray

    @property
    def num_local(self) -> int:
        return len(self.local_vertices)

    @property
    def num_halo(self) -> int:
        return len(self.halo_vertices)

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    @property
    def halo_fraction(self) -> float:
        total = self.num_local + self.num_halo
        return self.num_halo / total if total else 0.0


def build_shards(graph: CSRGraph, assignment: np.ndarray) -> List[GraphShard]:
    """Split ``graph`` into per-part local CSR shards with halo maps.

    Fully vectorized: no per-vertex Python loops, so building shards of
    a million-edge graph stays in numpy.
    """
    n = graph.num_vertices
    assignment = np.asarray(assignment, dtype=np.int64)
    if len(assignment) != n:
        raise GraphError(
            f"assignment length {len(assignment)} != num_vertices {n}"
        )
    num_parts = int(assignment.max()) + 1 if n else 1
    degs = graph.degrees()
    shards: List[GraphShard] = []
    lookup = np.empty(n, dtype=np.int64)
    for part in range(num_parts):
        own = np.flatnonzero(assignment == part)
        flat = _flat_positions(graph.indptr, own)
        cols = graph.indices[flat]
        halo = np.unique(cols[assignment[cols] != part])
        lookup[own] = np.arange(len(own), dtype=np.int64)
        lookup[halo] = len(own) + np.arange(len(halo), dtype=np.int64)
        indptr = np.zeros(len(own) + 1, dtype=np.int64)
        np.cumsum(degs[own], out=indptr[1:])
        shards.append(
            GraphShard(
                part=part,
                local_vertices=own,
                halo_vertices=halo,
                indptr=indptr,
                indices=lookup[cols].copy(),
                edge_positions=flat,
            )
        )
    return shards
