"""Full-batch training and inference loops.

The paper's headline setting: "full-batch computation on large graphs"
with no sampling or mini-batching (Sections 1 and 3).  Every epoch runs
one forward pass over all vertices, one loss, one backward pass, and one
optimizer step.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..graphs.csr import CSRGraph
from ..kernels.base import AggregationKernel, KernelStats
from ..obs import get_tracer
from ..tensors.sparsity import SparsityProfile
from . import functional as F
from .model import GNNModel
from .optim import Optimizer

logger = logging.getLogger(__name__)


@dataclass
class EpochResult:
    """Loss/accuracy record for one training epoch."""

    epoch: int
    loss: float
    train_accuracy: float
    val_accuracy: Optional[float] = None


@dataclass
class TrainingHistory:
    """All epoch records plus the sparsity profile of hidden features."""

    epochs: List[EpochResult] = field(default_factory=list)
    sparsity: SparsityProfile = field(default_factory=SparsityProfile)
    #: Work counters merged from every forward aggregation that ran on an
    #: optimized kernel (empty when training uses the SpMM oracle).
    aggregation_stats: KernelStats = field(default_factory=KernelStats)

    @property
    def final_loss(self) -> float:
        return self.epochs[-1].loss if self.epochs else float("nan")

    @property
    def final_accuracy(self) -> float:
        return self.epochs[-1].train_accuracy if self.epochs else 0.0

    def losses(self) -> List[float]:
        return [e.loss for e in self.epochs]


class Trainer:
    """Full-batch trainer for :class:`GNNModel`.

    Args:
        model: the GNN to train.
        optimizer: parameter update rule.
        profile_sparsity: record per-layer input sparsity each epoch —
            the Section 2.2 measurement that motivates feature compression.
        aggregation_kernel: optional optimized execution strategy (e.g. a
            ``BasicKernel`` on a multi-worker ``ChunkExecutor``) used for
            every forward aggregation; the backward pass stays on the
            transpose-SpMM oracle, which no kernel variant restructures.
        engine: chunk-execution engine (``"loop"`` or ``"batched"``).
            When given without a kernel, forward aggregation runs on a
            default :class:`~repro.kernels.BasicKernel` using it; when a
            kernel is given too, the kernel's engine is overridden.
    """

    def __init__(
        self,
        model: GNNModel,
        optimizer: Optimizer,
        profile_sparsity: bool = False,
        aggregation_kernel: Optional[AggregationKernel] = None,
        engine: Optional[str] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.profile_sparsity = profile_sparsity
        if engine is not None:
            from ..kernels.base import resolve_engine

            engine = resolve_engine(engine)
            if aggregation_kernel is None:
                from ..kernels.basic import BasicKernel

                aggregation_kernel = BasicKernel(engine=engine)
            elif hasattr(aggregation_kernel, "engine"):
                aggregation_kernel.engine = engine
            else:
                raise ValueError(
                    f"kernel {aggregation_kernel!r} has no engine knob"
                )
        self.engine = engine
        self.aggregation_kernel = aggregation_kernel
        self.history = TrainingHistory()

    def train_epoch(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        labels: np.ndarray,
        train_mask: Optional[np.ndarray] = None,
        val_mask: Optional[np.ndarray] = None,
    ) -> EpochResult:
        """One forward + backward + step over the whole graph."""
        tracer = get_tracer()
        with tracer.span("epoch", epoch=len(self.history.epochs)) as span:
            logits, caches = self.model.forward(
                graph, features, training=True, kernel=self.aggregation_kernel
            )
            for cache in caches:
                if cache.agg_stats is not None:
                    self.history.aggregation_stats.merge(cache.agg_stats)
            if self.profile_sparsity:
                for layer_idx, cache in enumerate(caches):
                    self.history.sparsity.record(layer_idx, cache.h_in)
            loss, grad = F.cross_entropy(logits, labels, mask=train_mask)
            with tracer.span("backward"):
                grads = self.model.backward(graph, grad, caches)
            self.optimizer.step(grads)
            result = EpochResult(
                epoch=len(self.history.epochs),
                loss=loss,
                train_accuracy=F.accuracy(logits, labels, mask=train_mask),
                val_accuracy=(
                    F.accuracy(logits, labels, mask=val_mask)
                    if val_mask is not None
                    else None
                ),
            )
            span.set_attr("loss", float(loss))
            span.set_attr("train_accuracy", result.train_accuracy)
        self.history.epochs.append(result)
        logger.debug(
            "epoch %d: loss %.4f train-acc %.3f",
            result.epoch,
            result.loss,
            result.train_accuracy,
        )
        return result

    def fit(
        self,
        graph: CSRGraph,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        train_mask: Optional[np.ndarray] = None,
        val_mask: Optional[np.ndarray] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for a fixed number of epochs."""
        for _ in range(epochs):
            result = self.train_epoch(
                graph, features, labels, train_mask=train_mask, val_mask=val_mask
            )
            if verbose:  # pragma: no cover - console output
                msg = (
                    f"epoch {result.epoch:>3}  loss {result.loss:.4f}  "
                    f"train-acc {result.train_accuracy:.3f}"
                )
                if result.val_accuracy is not None:
                    msg += f"  val-acc {result.val_accuracy:.3f}"
                print(msg)
        return self.history


def inference(
    model: GNNModel,
    graph: CSRGraph,
    features: np.ndarray,
    kernel: Optional[AggregationKernel] = None,
) -> np.ndarray:
    """Full-batch inference: logits for every vertex."""
    return model.predict(graph, features, kernel=kernel)


def train_val_split(
    num_vertices: int, train_fraction: float = 0.6, seed: int = 0
) -> "tuple[np.ndarray, np.ndarray]":
    """Random boolean train/val masks over the vertex set."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_vertices)
    cut = int(num_vertices * train_fraction)
    train_mask = np.zeros(num_vertices, dtype=bool)
    val_mask = np.zeros(num_vertices, dtype=bool)
    train_mask[order[:cut]] = True
    val_mask[order[cut:]] = True
    return train_mask, val_mask
