"""The DistGNN baseline kernel (Section 6).

DistGNN provides the paper's single-socket state of the art: a
vertex-parallel gather-reduce with static chunking, no software-prefetch
tuning and no JIT specialization.  This reproduction mirrors that
structure: plain per-vertex reduction over statically partitioned chunks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..nn.aggregate import normalization_factors
from .base import AggregationKernel, KernelStats, validate_inputs


class DistGNNKernel(AggregationKernel):
    """Baseline vertex-parallel aggregation with static chunks."""

    name = "distgnn"

    def __init__(self, num_threads: int = 28) -> None:
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        self.num_threads = num_threads

    def aggregate(
        self, graph: CSRGraph, h: np.ndarray, aggregator: str = "gcn"
    ) -> Tuple[np.ndarray, KernelStats]:
        validate_inputs(graph, h)
        edge_factors, self_factors = normalization_factors(graph, aggregator)
        n = graph.num_vertices
        out = np.empty_like(h, dtype=np.float32)
        stats = KernelStats()
        # Static partition: contiguous chunk of vertices per thread.
        chunk = max(1, (n + self.num_threads - 1) // self.num_threads)
        for start in range(0, n, chunk):
            stats.tasks += 1
            for v in range(start, min(start + chunk, n)):
                s, e = graph.indptr[v], graph.indptr[v + 1]
                row = graph.indices[s:e]
                acc = h[v] * self_factors[v]
                if len(row):
                    acc = acc + (h[row] * edge_factors[s:e, None]).sum(axis=0)
                out[v] = acc
                stats.gathers += len(row) + 1
        stats.flops = 2.0 * stats.gathers * h.shape[1]
        return out, stats
