"""Unit tests for the address-trace layout."""

import numpy as np
import pytest

from repro.sim import MemoryLayout, iter_traces, layout_for, vertex_trace


class TestMemoryLayout:
    def test_row_padding_to_lines(self):
        layout = MemoryLayout(num_vertices=10, num_edges=20, feature_len=17)
        assert layout.row_bytes == 128  # 68B padded to two lines
        assert layout.lines_per_row == 2

    def test_exact_line_multiple_unpadded(self):
        layout = MemoryLayout(num_vertices=10, num_edges=20, feature_len=16)
        assert layout.row_bytes == 64

    def test_regions_do_not_overlap(self):
        layout = MemoryLayout(num_vertices=100, num_edges=500, feature_len=32)
        assert layout.h_base < layout.idx_base < layout.factor_base < layout.a_base
        assert layout.idx_base == layout.h_base + 100 * layout.row_bytes
        assert layout.end > layout.a_base

    def test_feature_lines(self):
        layout = MemoryLayout(num_vertices=4, num_edges=0, feature_len=32)
        lines = layout.feature_lines(1)
        assert lines == [128, 192]  # row 1 starts at 128B, spans 2 lines

    def test_index_lines_cover_slice(self):
        layout = MemoryLayout(num_vertices=4, num_edges=100, feature_len=16)
        # indices 0..15 pack into one 64B line (4B each).
        assert len(layout.index_lines(0, 16)) == 1
        assert len(layout.index_lines(0, 17)) == 2

    def test_empty_slice(self):
        layout = MemoryLayout(num_vertices=4, num_edges=10, feature_len=16)
        assert layout.index_lines(3, 3) == []
        assert layout.factor_lines(5, 5) == []


class TestVertexTrace:
    def test_counts(self, tiny_graph):
        layout = layout_for(tiny_graph, 16)
        trace = vertex_trace(tiny_graph, layout, 3)
        # Vertex 3 gathers {0,1,2} plus itself: 4 rows of 1 line each.
        assert len(trace.gather_lines) == 4
        assert len(trace.output_lines) == 1
        assert trace.input_line_count >= 4

    def test_isolated_vertex_still_touches_self(self, tiny_graph):
        layout = layout_for(tiny_graph, 16)
        trace = vertex_trace(tiny_graph, layout, 4)
        assert len(trace.gather_lines) == 1
        assert trace.index_lines == ()

    def test_iter_traces_covers_order(self, tiny_graph):
        layout = layout_for(tiny_graph, 16)
        order = np.array([4, 3, 2, 1, 0])
        traces = list(iter_traces(tiny_graph, layout, order))
        assert [t.vertex for t in traces] == [4, 3, 2, 1, 0]

    def test_gather_lines_match_neighbors(self, tiny_graph):
        layout = layout_for(tiny_graph, 16)
        trace = vertex_trace(tiny_graph, layout, 0)
        expected = (
            layout.feature_lines(1)
            + layout.feature_lines(2)
            + layout.feature_lines(0)
        )
        assert list(trace.gather_lines) == expected

    def test_index_factor_lines_aligned_rows_line_spaced(self, tiny_graph):
        layout = layout_for(tiny_graph, 17)  # padded rows
        for v in range(tiny_graph.num_vertices):
            trace = vertex_trace(tiny_graph, layout, v)
            for addr in (*trace.index_lines, *trace.factor_lines):
                assert addr % 64 == 0
            # Feature/output rows are row-granular: lines of one row are
            # spaced exactly one cache line apart.
            rows = [
                trace.gather_lines[i : i + layout.lines_per_row]
                for i in range(0, len(trace.gather_lines), layout.lines_per_row)
            ]
            for row in rows:
                assert [b - a for a, b in zip(row, row[1:])] == [64] * (
                    len(row) - 1
                )


class TestCompulsoryFootprint:
    """Distinct lines across a full pass = the working set.

    This is the identity the attribution reconciliation relies on: with
    caches larger than the working set, the simulator's DRAM traffic is
    exactly the distinct-line footprint below.
    """

    def test_distinct_lines_equal_working_set(self, tiny_graph):
        layout = layout_for(tiny_graph, 16)
        order = np.arange(tiny_graph.num_vertices)
        gather, output, index, factor = set(), set(), set(), set()
        for trace in iter_traces(tiny_graph, layout, order):
            gather.update(trace.gather_lines)
            output.update(trace.output_lines)
            index.update(trace.index_lines)
            factor.update(trace.factor_lines)
        n = tiny_graph.num_vertices
        assert len(gather) == n * layout.lines_per_row
        assert len(output) == n * layout.lines_per_row
        # Index/factor arrays: 4B per edge, packed into whole lines.
        expected_idx = len(
            {a // 64 for a in range(layout.idx_base,
                                    layout.idx_base + 4 * tiny_graph.num_edges)}
        )
        assert len(index) <= expected_idx
        assert len(factor) <= expected_idx

    def test_footprint_invariant_under_order(self, tiny_graph):
        layout = layout_for(tiny_graph, 16)
        forward = np.arange(tiny_graph.num_vertices)
        backward = forward[::-1]

        def lines(order):
            seen = set()
            for trace in iter_traces(tiny_graph, layout, order):
                seen.update(trace.gather_lines)
                seen.update(trace.output_lines)
                seen.update(trace.index_lines)
                seen.update(trace.factor_lines)
            return seen

        assert lines(forward) == lines(backward)

    def test_input_and_output_rows_never_share_lines(self, tiny_graph):
        """h and a rows must not alias — a hit on one is never the other."""
        layout = layout_for(tiny_graph, 16)
        gather, output = set(), set()
        for v in range(tiny_graph.num_vertices):
            trace = vertex_trace(tiny_graph, layout, v)
            gather.update(a // 64 for a in trace.gather_lines)
            output.update(a // 64 for a in trace.output_lines)
        assert not gather & output
