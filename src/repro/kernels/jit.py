"""JIT kernel specialization — the xbyak role (Section 4.1).

The paper tailors the aggregation inner loop to each layer's feature
length with a JIT assembler: specialized kernels use layer constants,
avoid bounds checks, and are generated once per model because "the code
is tailored to the model but not the data".

In Python the analogous move is generating a closure specialized to
``(feature_len, aggregator)``: the closure binds the ψ factor arrays and
the vector width once, and the cache guarantees the one-compilation-per-
spec amortization the paper relies on.

Two specializations exist per spec:

* ``specialize`` — the per-vertex *loop* closure: one call aggregates one
  vertex (the original interpreter-bound execution).
* ``specialize_batched`` — the *batched* closure: one call aggregates a
  whole array of vertices with CSR-segment ``np.add.reduceat`` over the
  pre-scaled gathered rows (one fused sparse-dense product when the
  vertices are a contiguous range), Alg. 1's vector lanes expressed as
  numpy calls instead of a Python-level inner loop.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..nn.aggregate import normalization_factors

#: Signature of a specialized aggregation inner kernel: returns the
#: aggregated feature row of one vertex given the input feature matrix.
InnerKernel = Callable[[np.ndarray, int], np.ndarray]

#: Signature of a batched inner kernel: returns the aggregated rows of an
#: array of vertex ids given the input feature matrix.
BatchedKernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class KernelSpec:
    """The model-dependent constants a specialized kernel binds."""

    feature_len: int
    aggregator: str

    def __post_init__(self) -> None:
        if self.feature_len <= 0:
            raise ValueError(f"feature_len must be positive, got {self.feature_len}")


class JitKernelCache:
    """Compile-once cache of specialized aggregation kernels.

    ``specialize`` / ``specialize_batched`` return closures over the
    graph's precomputed factor arrays.  ``compilations`` counts actual
    generation events; repeated requests for the same spec on the same
    graph are cache hits, matching the paper's claim that codegen
    overhead is amortized over the session.

    Entries are keyed by the graph's :meth:`CSRGraph.cache_token` — not
    ``id(graph)``, which the allocator recycles: a look-alike graph
    allocated at a dead graph's address must never inherit its ψ-factor
    arrays.  A weakref callback on the token evicts the dead graph's
    entries before its token id can be reused.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, str, int, str], Callable] = {}
        self._tokens: Dict[int, "weakref.ref"] = {}
        self.compilations = 0

    def __len__(self) -> int:
        return len(self._cache)

    def _graph_key(self, graph: CSRGraph) -> int:
        token = graph.cache_token()
        tid = id(token)
        if tid not in self._tokens:
            self._tokens[tid] = weakref.ref(
                token, lambda _ref, tid=tid: self._evict(tid)
            )
        return tid

    def _evict(self, tid: int) -> None:
        """Drop every entry of a dead graph (weakref callback)."""
        self._tokens.pop(tid, None)
        for key in [key for key in self._cache if key[0] == tid]:
            del self._cache[key]

    def _lookup(self, graph: CSRGraph, spec: KernelSpec, engine: str, generate):
        key = (self._graph_key(graph), engine, spec.feature_len, spec.aggregator)
        kernel = self._cache.get(key)
        if kernel is None:
            kernel = generate(graph, spec)
            self._cache[key] = kernel
            self.compilations += 1
        return kernel

    def specialize(self, graph: CSRGraph, spec: KernelSpec) -> InnerKernel:
        """Per-vertex loop closure for ``spec`` on ``graph``."""
        return self._lookup(graph, spec, "loop", self._generate)

    def specialize_batched(self, graph: CSRGraph, spec: KernelSpec) -> BatchedKernel:
        """Batched segment-reduce closure for ``spec`` on ``graph``."""
        return self._lookup(graph, spec, "batched", self._generate_batched)

    def _generate(self, graph: CSRGraph, spec: KernelSpec) -> InnerKernel:
        """Generate the specialized per-vertex inner loop.

        The generated closure binds: the CSR arrays, the ψ factor arrays
        (edge + self), and the feature length — the layer-specific
        constants an xbyak kernel would embed as immediates.
        """
        edge_factors, self_factors = normalization_factors(graph, spec.aggregator)
        indptr = graph.indptr
        indices = graph.indices
        feature_len = spec.feature_len

        def kernel(h: np.ndarray, v: int) -> np.ndarray:
            if h.shape[1] != feature_len:
                raise ValueError(
                    f"kernel specialized for {feature_len} features, "
                    f"got {h.shape[1]}"
                )
            start, end = indptr[v], indptr[v + 1]
            row = indices[start:end]
            acc = h[v] * self_factors[v]
            if len(row):
                acc = acc + (h[row] * edge_factors[start:end, None]).sum(axis=0)
            return acc

        return kernel

    def _generate_batched(self, graph: CSRGraph, spec: KernelSpec) -> BatchedKernel:
        """Generate the specialized batched segment-reduce kernel.

        For a vertex array ``verts`` the closure computes, in a handful
        of vectorized calls, ``h[verts] * ψ_self + segment_sum(h[nbrs] *
        ψ_edge)``.  Two code paths, one result:

        * *contiguous* vertex ranges (every chunk of a natural-order
          plan, every fused block) are a zero-copy CSR row slice, so the
          segment sum is one fused sparse-dense product — gather, ψ
          scale, and reduce in a single C pass;
        * arbitrary vertex sets build the flat neighbor positions with
          the repeat/arange trick, pre-scale every gathered row by its
          edge factor, and reduce each non-empty CSR segment with
          ``np.add.reduceat`` (empty segments keep the bare self term).
        """
        from scipy import sparse

        edge_factors, self_factors = normalization_factors(graph, spec.aggregator)
        indptr = graph.indptr
        indices = graph.indices
        feature_len = spec.feature_len
        num_vertices = graph.num_vertices

        def kernel(h: np.ndarray, verts: np.ndarray) -> np.ndarray:
            if h.shape[1] != feature_len:
                raise ValueError(
                    f"kernel specialized for {feature_len} features, "
                    f"got {h.shape[1]}"
                )
            verts = np.asarray(verts, dtype=np.int64)
            count = len(verts)
            acc = h[verts] * self_factors[verts, None]
            if count and int(verts[-1]) - int(verts[0]) == count - 1 and (
                count == 1 or bool((np.diff(verts) == 1).all())
            ):
                # Contiguous range: the chunk's adjacency is the CSR row
                # slice [v0, v0+count) — one fused gather-scale-reduce.
                v0 = int(verts[0])
                e0, e1 = int(indptr[v0]), int(indptr[v0 + count])
                if e1 > e0:
                    sub = sparse.csr_matrix(
                        (
                            edge_factors[e0:e1],
                            indices[e0:e1],
                            indptr[v0 : v0 + count + 1] - e0,
                        ),
                        shape=(count, num_vertices),
                        copy=False,
                    )
                    acc += sub @ h
                return acc
            starts = indptr[verts]
            counts = indptr[verts + 1] - starts
            total = int(counts.sum())
            if total:
                seg_ptr = np.zeros(count + 1, dtype=np.int64)
                np.cumsum(counts, out=seg_ptr[1:])
                flat = np.repeat(starts - seg_ptr[:-1], counts) + np.arange(
                    total, dtype=np.int64
                )
                scaled = h[indices[flat]]
                scaled *= edge_factors[flat, None]
                nonempty = np.flatnonzero(counts)
                acc[nonempty] += np.add.reduceat(scaled, seg_ptr[nonempty], axis=0)
            return acc

        return kernel
