"""Mask-based feature compression — Section 4.3 / Figure 6 of the paper.

AVX-512 offers ``vcompressps``/``vexpandps``: given a bit mask, compress
packs the unmasked (non-zero) lanes of a vector contiguously, and expand
scatters a dense vector back into the masked positions.  The paper uses
them to strip zeros from moderately sparse feature vectors before they hit
DRAM and to restore them after reading.

Key properties reproduced here:

* metadata is exactly one bit per element (``1/32`` overhead for fp32),
  independent of sparsity level;
* storage per vector stays *fixed-stride*: the compressed payload occupies
  the front of the original slot, so random access needs no indirection
  (Section 4.3, last paragraph) — compression saves *bandwidth*, never
  footprint;
* round-trip is exact: decompress(compress(x)) == x.

The traffic accounting mirrors the paper's arithmetic: at sparsity ``s``
the bytes moved are ``(1 - s) + 1/32`` of the dense bytes (e.g. 50% sparse
fp32 -> 46.875% traffic saved).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

#: Bits of mask metadata per feature element.
MASK_BITS_PER_ELEMENT = 1

#: Simulated hardware vector length in fp32 lanes (AVX-512: 512/32).
VECTOR_LANES = 16


@dataclass(frozen=True)
class CompressedVector:
    """A compressed feature vector: dense payload + per-element bit mask.

    ``payload`` holds the non-zero elements in order; ``mask`` is a packed
    uint8 array (numpy packbits layout) with one bit per original element;
    ``length`` is the original element count.
    """

    payload: np.ndarray
    mask: np.ndarray
    length: int

    @property
    def nonzeros(self) -> int:
        return len(self.payload)

    def stored_bytes(self) -> int:
        """Bytes that must cross the memory bus for this vector."""
        return self.payload.nbytes + self.mask.nbytes


def compress(vector: np.ndarray) -> CompressedVector:
    """Compress one feature vector (Figure 6a/6b).

    Step 1 compares against zero to build the mask; step 2 bubble-collapses
    the non-zero lanes.  Vectorized over the whole vector rather than 16
    lanes at a time — numerically identical.
    """
    vector = np.ascontiguousarray(vector, dtype=np.float32)
    nonzero = vector != 0.0
    payload = vector[nonzero]
    mask = np.packbits(nonzero)
    return CompressedVector(payload=payload, mask=mask, length=len(vector))


def decompress(compressed: CompressedVector) -> np.ndarray:
    """Restore the sparse vector (Figure 6c bubble-expand)."""
    out = np.zeros(compressed.length, dtype=np.float32)
    nonzero = np.unpackbits(compressed.mask, count=compressed.length).astype(bool)
    if int(nonzero.sum()) != compressed.nonzeros:
        raise ValueError(
            "mask population does not match payload length "
            f"({int(nonzero.sum())} vs {compressed.nonzeros})"
        )
    out[nonzero] = compressed.payload
    return out


@dataclass(frozen=True)
class CompressedMatrix:
    """A feature matrix compressed row-by-row into fixed-stride slots.

    ``slots`` has the original (rows, cols) shape; row ``v`` keeps its
    compressed payload in ``slots[v, :counts[v]]`` and garbage beyond —
    exactly the paper's constant-sized storage scheme.
    """

    slots: np.ndarray
    masks: np.ndarray  # (rows, ceil(cols/8)) packed bits
    counts: np.ndarray  # (rows,) non-zeros per row
    cols: int

    @property
    def rows(self) -> int:
        return len(self.counts)

    def row_stored_bytes(self, v: int) -> int:
        """Useful bytes read/written for row ``v`` (payload + mask)."""
        return int(self.counts[v]) * self.slots.dtype.itemsize + self.masks.shape[1]

    def total_stored_bytes(self) -> int:
        return int(
            self.counts.sum() * self.slots.dtype.itemsize
            + self.masks.shape[0] * self.masks.shape[1]
        )

    def dense_bytes(self) -> int:
        return self.slots.nbytes


def compress_matrix(matrix: np.ndarray) -> CompressedMatrix:
    """Compress every row of a feature matrix."""
    matrix = np.ascontiguousarray(matrix, dtype=np.float32)
    rows, cols = matrix.shape
    nonzero = matrix != 0.0
    counts = nonzero.sum(axis=1).astype(np.int64)
    slots = np.zeros_like(matrix)
    # Stable left-pack per row: position of each nonzero within its row.
    positions = np.cumsum(nonzero, axis=1) - 1
    rr, cc = np.nonzero(nonzero)
    slots[rr, positions[rr, cc]] = matrix[rr, cc]
    masks = np.packbits(nonzero, axis=1)
    return CompressedMatrix(slots=slots, masks=masks, counts=counts, cols=cols)


def decompress_matrix(compressed: CompressedMatrix) -> np.ndarray:
    """Restore the dense feature matrix."""
    rows, cols = compressed.rows, compressed.cols
    nonzero = np.unpackbits(compressed.masks, axis=1, count=cols).astype(bool)
    out = np.zeros((rows, cols), dtype=np.float32)
    positions = np.cumsum(nonzero, axis=1) - 1
    rr, cc = np.nonzero(nonzero)
    out[rr, cc] = compressed.slots[rr, positions[rr, cc]]
    return out


def decompress_row(compressed: CompressedMatrix, v: int) -> np.ndarray:
    """Restore one row — the random-access path the fixed stride preserves."""
    nonzero = np.unpackbits(compressed.masks[v], count=compressed.cols).astype(bool)
    out = np.zeros(compressed.cols, dtype=np.float32)
    out[nonzero] = compressed.slots[v, : int(compressed.counts[v])]
    return out


def traffic_ratio(sparsity: float, element_bits: int = 32) -> float:
    """Fraction of dense traffic that compressed transfer still moves.

    ``(1 - sparsity) + 1/element_bits``; below the break-even sparsity of
    ``1/element_bits`` compression *adds* traffic.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    return (1.0 - sparsity) + MASK_BITS_PER_ELEMENT / element_bits


def traffic_saved(sparsity: float, element_bits: int = 32) -> float:
    """Fraction of dense traffic eliminated (paper: 46.875% at 50%)."""
    return 1.0 - traffic_ratio(sparsity, element_bits)


def measured_traffic_ratio(compressed: CompressedMatrix) -> float:
    """Actual stored/dense byte ratio of a compressed matrix."""
    dense = compressed.dense_bytes()
    if dense == 0:
        return 1.0
    return compressed.total_stored_bytes() / dense
