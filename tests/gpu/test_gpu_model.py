"""Unit tests for the Figure 2 GPU epoch-time model."""

import pytest

pytestmark = pytest.mark.slow  # samples many minibatch epochs; skip via -m "not slow"

from repro.gpu import epoch_breakdown
from repro.graphs import load_dataset


@pytest.fixture(scope="module")
def graph():
    return load_dataset("products", scale=0.25, seed=0)


class TestBreakdown:
    def test_positive_components(self, graph):
        result = epoch_breakdown(graph, batch_size=32)
        assert result.sampling_seconds > 0
        assert result.gnn_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.sampling_seconds + result.gnn_seconds
        )

    def test_sampling_dominates(self, graph):
        """The Figure 2 headline: sampling+minibatching takes >60% of the
        epoch (>80% in the paper's full-scale run)."""
        result = epoch_breakdown(graph, batch_size=32)
        assert result.sampling_share > 0.6

    def test_smaller_batches_slower_epochs(self, graph):
        small = epoch_breakdown(graph, batch_size=32)
        large = epoch_breakdown(graph, batch_size=128)
        assert large.total_seconds < small.total_seconds

    def test_share_persists_across_batch_sizes(self, graph):
        for batch in (32, 64, 128):
            assert epoch_breakdown(graph, batch_size=batch).sampling_share > 0.5
