"""Unit tests for run-report building and the telemetry singletons."""

import json

import repro
from repro import obs
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_run_report,
    environment_info,
    write_json,
)


class TestEnvironmentInfo:
    def test_required_keys(self):
        env = environment_info()
        for key in (
            "repro_version", "git_sha", "python", "numpy",
            "platform", "cpu_count",
        ):
            assert key in env
        assert env["repro_version"] == repro.__version__

    def test_json_serializable(self):
        json.dumps(environment_info())


class TestBuildRunReport:
    def test_joins_spans_metrics_meta(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        with tracer.span("epoch"):
            with tracer.span("layer") as span:
                span.add_counters({"gathers": 4})
        metrics.inc("kernel.basic.gathers", 4)
        report = build_run_report(
            tracer, metrics, meta={"command": "test", "workers": 2}
        )
        assert report["schema"] == 1
        assert report["meta"]["workers"] == 2
        assert len(report["spans"]) == 2
        assert report["span_tree"][0]["name"] == "epoch"
        assert report["span_tree"][0]["children"][0]["name"] == "layer"
        assert report["metrics"]["kernel.basic.gathers"]["value"] == 4.0
        assert report["counter_totals"] == {"gathers": 4.0}

    def test_empty_report(self):
        report = build_run_report()
        assert report["spans"] == []
        assert report["metrics"] == {}
        json.dumps(report)

    def test_write_json(self, tmp_path):
        path = tmp_path / "run.json"
        write_json(str(path), build_run_report(meta={"x": 1}))
        loaded = json.loads(path.read_text())
        assert loaded["meta"] == {"x": 1}

    def test_embeds_epoch_events_from_event_log(self):
        from repro.obs.events import EpochEvent, EventLog

        log = EventLog(None)
        log.emit(
            EpochEvent(
                epoch=0, loss=1.0, train_accuracy=0.5, wall_time_s=0.01,
                compression={"realized_dram_bytes_saved": 0.0,
                             "predicted_dram_bytes_saved": 1.0},
            )
        )
        report = build_run_report(events=log)
        assert len(report["epoch_events"]) == 1
        assert report["epoch_events"][0]["epoch"] == 0
        json.dumps(report)

    def test_embeds_events_from_plain_list(self):
        records = [{"kind": "epoch", "epoch": 0}]
        report = build_run_report(events=records)
        assert report["epoch_events"] == records

    def test_embeds_sparsity_profile(self):
        from repro.tensors import SparsityProfile

        profile = SparsityProfile()
        profile.add(1, 0.62)
        report = build_run_report(sparsity=profile)
        assert report["sparsity"]["last"] == {"1": 0.62}
        json.dumps(report)

    def test_no_extras_no_keys(self):
        report = build_run_report()
        assert "epoch_events" not in report
        assert "sparsity" not in report


class TestGlobalSingletons:
    def test_disabled_by_default(self):
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().enabled is False

    def test_enable_disable_round_trip(self):
        tracer, metrics = obs.enable()
        try:
            assert obs.get_tracer() is tracer
            assert obs.get_metrics() is metrics
            assert tracer.enabled and metrics.enabled
        finally:
            obs.disable()
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().enabled is False


class TestProfileEmbedding:
    def test_embeds_profile_and_span_phase_seconds(self):
        from repro.obs import Tracer
        from repro.obs.profiler import ProfileData

        tracer = Tracer()
        with tracer.span("kernel.basic"):
            pass
        profile = ProfileData(hz=100.0)
        profile.record("aggregate", ("m:f",), "MainThread")
        report = build_run_report(tracer, profile=profile)
        assert report["profile"]["hz"] == 100.0
        assert report["profile"]["phases"]["aggregate"]["samples"] == 1.0
        assert "aggregate" in report["span_phase_seconds"]
        json.dumps(report)  # stays JSON-serializable

    def test_accepts_pre_serialized_profile_dict(self):
        report = build_run_report(
            profile={"hz": 97.0, "phases": {}, "folded": {}}
        )
        assert report["profile"]["hz"] == 97.0
        assert report["span_phase_seconds"] == {}

    def test_no_profile_no_keys(self):
        report = build_run_report()
        assert "profile" not in report
        assert "span_phase_seconds" not in report
