"""Unit tests for GNN layers, including a full numerical gradient check."""

import numpy as np
import pytest

from repro.graphs import synthetic_features, uniform_graph
from repro.nn import GNNLayer, aggregate, gcn_layer, sage_layer


class TestForward:
    def test_output_shape(self, tiny_graph):
        layer = GNNLayer(4, 6, seed=0)
        h = np.ones((5, 4), dtype=np.float32)
        out, cache = layer.forward(tiny_graph, h)
        assert out.shape == (5, 6)
        assert cache.a.shape == (5, 4)

    def test_matches_manual_computation(self, tiny_graph):
        layer = GNNLayer(3, 2, aggregator="gcn", activation=True, seed=1)
        h = synthetic_features(tiny_graph, 3, seed=2)
        out, _ = layer.forward(tiny_graph, h)
        expected = np.maximum(
            aggregate(tiny_graph, h, "gcn") @ layer.weight + layer.bias, 0.0
        )
        np.testing.assert_allclose(out, expected, atol=1e-5)

    def test_no_activation_layer(self, tiny_graph):
        layer = GNNLayer(3, 2, activation=False, seed=1)
        h = synthetic_features(tiny_graph, 3, seed=2)
        out, _ = layer.forward(tiny_graph, h)
        assert (out < 0).any()  # negatives survive without ReLU

    def test_wrong_width_rejected(self, tiny_graph):
        layer = GNNLayer(4, 2)
        with pytest.raises(ValueError):
            layer.forward(tiny_graph, np.ones((5, 3), dtype=np.float32))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GNNLayer(0, 4)
        with pytest.raises(ValueError):
            GNNLayer(4, 4, aggregator="sum")

    def test_dropout_only_in_training(self, tiny_graph):
        layer = GNNLayer(8, 4, dropout=0.5, seed=0)
        h = np.ones((5, 8), dtype=np.float32)
        _, cache_eval = layer.forward(tiny_graph, h, training=False)
        _, cache_train = layer.forward(tiny_graph, h, training=True)
        assert cache_eval.dropout_mask is None
        assert cache_train.dropout_mask is not None
        assert (cache_train.h_in == 0).any()


class TestBackward:
    def test_gradient_shapes(self, tiny_graph):
        layer = GNNLayer(4, 3, seed=0)
        h = synthetic_features(tiny_graph, 4, seed=1)
        out, cache = layer.forward(tiny_graph, h, training=True)
        grads = layer.backward(tiny_graph, np.ones_like(out), cache)
        assert grads.weight.shape == layer.weight.shape
        assert grads.bias.shape == layer.bias.shape
        assert grads.h_in.shape == h.shape

    def test_numerical_gradcheck_weight(self):
        """Loss = sum(layer(h)); check dL/dW numerically."""
        graph = uniform_graph(8, 2.0, seed=0)
        layer = GNNLayer(3, 2, activation=True, seed=3)
        h = synthetic_features(graph, 3, seed=4).astype(np.float64)
        h = h.astype(np.float32)

        def loss():
            out, cache = layer.forward(graph, h)
            return float(out.sum()), cache

        base, cache = loss()
        grads = layer.backward(graph, np.ones((8, 2), dtype=np.float32), cache)

        eps = 1e-3
        for idx in [(0, 0), (1, 1), (2, 0)]:
            original = layer.weight[idx]
            layer.weight[idx] = original + eps
            high, _ = loss()
            layer.weight[idx] = original - eps
            low, _ = loss()
            layer.weight[idx] = original
            numeric = (high - low) / (2 * eps)
            assert grads.weight[idx] == pytest.approx(numeric, rel=0.05, abs=1e-2)

    def test_numerical_gradcheck_input(self):
        graph = uniform_graph(6, 2.0, seed=1)
        layer = GNNLayer(2, 2, activation=True, seed=5)
        h = synthetic_features(graph, 2, seed=6)

        out, cache = layer.forward(graph, h)
        grads = layer.backward(graph, np.ones_like(out), cache)

        eps = 1e-3
        for idx in [(0, 0), (3, 1), (5, 0)]:
            original = h[idx]
            h[idx] = original + eps
            high = layer.forward(graph, h)[0].sum()
            h[idx] = original - eps
            low = layer.forward(graph, h)[0].sum()
            h[idx] = original
            numeric = (high - low) / (2 * eps)
            assert grads.h_in[idx] == pytest.approx(numeric, rel=0.05, abs=1e-2)

    def test_apply_grads_moves_parameters(self, tiny_graph):
        layer = GNNLayer(3, 2, seed=0)
        h = synthetic_features(tiny_graph, 3, seed=0)
        out, cache = layer.forward(tiny_graph, h)
        grads = layer.backward(tiny_graph, np.ones_like(out), cache)
        before = layer.weight.copy()
        layer.apply_grads(grads, lr=0.1)
        assert not np.array_equal(before, layer.weight)


class TestConvenienceConstructors:
    def test_gcn_layer(self):
        assert gcn_layer(4, 2).aggregator == "gcn"

    def test_sage_layer(self):
        assert sage_layer(4, 2).aggregator == "mean"
