"""GNN numerics: layers, models, optimizers, full-batch training."""

from .aggregate import (
    AGGREGATORS,
    aggregate,
    aggregate_backward,
    gather_reduce_reference,
    normalization_factors,
    normalized_adjacency,
)
from .functional import (
    accuracy,
    cross_entropy,
    dropout,
    dropout_grad,
    relu,
    relu_grad,
    softmax,
    xavier_uniform,
)
from .layers import GNNLayer, LayerCache, LayerGrads, gcn_layer, sage_layer
from .minibatch import MiniBatchStep, MiniBatchTrainer, block_aggregate
from .model import GNNModel, build_model
from .optim import Adam, Optimizer, SGD
from .training import (
    EpochResult,
    Trainer,
    TrainingHistory,
    inference,
    train_val_split,
)

__all__ = [
    "AGGREGATORS",
    "aggregate",
    "aggregate_backward",
    "gather_reduce_reference",
    "normalization_factors",
    "normalized_adjacency",
    "accuracy",
    "cross_entropy",
    "dropout",
    "dropout_grad",
    "relu",
    "relu_grad",
    "softmax",
    "xavier_uniform",
    "GNNLayer",
    "LayerCache",
    "LayerGrads",
    "gcn_layer",
    "sage_layer",
    "GNNModel",
    "MiniBatchStep",
    "MiniBatchTrainer",
    "block_aggregate",
    "build_model",
    "Adam",
    "Optimizer",
    "SGD",
    "EpochResult",
    "Trainer",
    "TrainingHistory",
    "inference",
    "train_val_split",
]
