"""Section 7.3.2: overall memory-system improvement from the DMA engine."""

from conftest import run_experiment

from repro.bench.figures import sec732_memory_system


def test_sec732_memory_system(benchmark):
    exp = run_experiment(benchmark, sec732_memory_system)
    values = {r.label: r.measured for r in exp.rows}
    for name in ("products", "wikipedia"):
        assert values[f"{name} L2 miss after"] < values[f"{name} L2 miss before"]
        assert values[f"{name} L2 miss after"] < 0.1
