"""Ablation: software-prefetch policy (Section 4.1).

The paper prefetches only the first two cache lines of each upcoming
feature vector because the L1 fill buffers are already full of demand
misses; this ablation quantifies how many prefetches each policy issues.
"""

from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.graphs import synthetic_features
from repro.kernels import BasicKernel


def _sweep(ctx):
    graph = ctx.graph("products")
    h = synthetic_features(graph, 64, seed=0)
    exp = Experiment("ablation-D", "Prefetch distance: hints issued")
    for distance in (0, 1, 4, 16):
        _, stats = BasicKernel(prefetch_distance=distance).aggregate(graph, h)
        exp.add(f"D={distance} prefetch hints", float(stats.prefetches), unit="")
    return exp


def test_prefetch_ablation(benchmark, ctx):
    exp = run_experiment(benchmark, _sweep, ctx)
    values = {r.label: r.measured for r in exp.rows}
    assert values["D=0 prefetch hints"] == 0.0
    assert values["D=4 prefetch hints"] > 0
    # Two lines per vector regardless of D (the Section 4.1 policy).
    gathers = ctx.graph("products").num_edges + ctx.graph("products").num_vertices
    assert values["D=1 prefetch hints"] <= gathers * 2
