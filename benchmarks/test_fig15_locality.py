"""Figure 15: locality reordering vs the randomized-order reference."""

from conftest import run_experiment

from repro.bench.figures import fig15_locality


def test_fig15_locality(benchmark, ctx):
    exp = run_experiment(benchmark, fig15_locality, ctx)
    values = {r.label: r.measured for r in exp.rows}
    # products/papers ship with no source locality: combined == randomized.
    assert abs(values["products combined"] - 1.0) < 0.1
    assert abs(values["papers combined"] - 1.0) < 0.1
    # wikipedia/twitter are pre-localized: combined beats randomized.
    assert values["wikipedia combined"] > 1.02
    assert values["twitter combined"] > 1.0
    # The reordering improves every dataset (Section 7.2.4's conclusion).
    for name in ("products", "wikipedia", "papers", "twitter"):
        assert values[f"{name} locality"] >= values[f"{name} combined"] * 0.98
