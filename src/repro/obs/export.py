"""Perfetto / chrome://tracing export of span traces.

Converts the tracer's span records (plus, optionally, a metrics-registry
snapshot) into the Chrome trace-event JSON format, which both
``chrome://tracing`` and https://ui.perfetto.dev load directly.  The
mapping:

* every span record becomes one ``"X"`` (complete) event — ``ts``/``dur``
  in microseconds, nested by the viewer from the timestamps;
* worker spans (those carrying a ``worker_id`` attribute) are placed on
  their own thread lane (``tid = worker_id + 1``) so parallel chunk
  batches render side by side instead of stacked on the main thread;
* span counters become cumulative ``"C"`` (counter) tracks — one track
  per counter name, stepped at each span's end — and registry counters
  contribute one final sample each, so DRAM-bytes-saved and gather
  totals are plottable next to the timeline;
* ``"M"`` metadata events name the process and each thread lane.

The exported file is a plain JSON object ``{"traceEvents": [...]}`` —
the one Chrome-trace container Perfetto also accepts.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional

#: The single pid every event carries (one process per trace).
TRACE_PID = 1

#: Span counters promoted to cumulative counter tracks.  Everything the
#: kernels publish is additive, so a running sum over span end times is
#: a faithful "how much work so far" curve.
COUNTER_TRACK_KEYS = ("gathers", "flops", "dram_bytes_saved", "tasks")


def _span_tid(record: Mapping[str, Any]) -> int:
    """Thread lane of one span: workers get their own, the rest tid 0."""
    attrs = record.get("attrs") or {}
    worker = attrs.get("worker_id")
    if worker is None:
        return 0
    return int(worker) + 1


def _micros(seconds: float) -> float:
    return float(seconds) * 1e6


def chrome_trace_events(
    records: List[Dict[str, Any]],
    metrics_snapshot: Optional[Mapping[str, Mapping[str, float]]] = None,
    profile: Optional[Mapping[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Build the Chrome trace-event list for a list of span records.

    The returned list contains exactly one ``"X"`` event per span record,
    plus ``"C"`` counter samples and ``"M"`` metadata events.  With a
    sampled ``profile`` block (:meth:`ProfileData.to_dict` or the run
    report's ``profile`` entry), each timeline tick becomes one ``"i"``
    instant event named ``sample.<phase>`` and a cumulative
    ``profiler/samples`` counter track shows when the profiler ran.
    """
    events: List[Dict[str, Any]] = []
    tids = {0}
    spans = sorted(records, key=lambda r: r.get("start_s", 0.0))
    for record in spans:
        tid = _span_tid(record)
        tids.add(tid)
        attrs = record.get("attrs") or {}
        counters = record.get("counters") or {}
        args: Dict[str, Any] = dict(attrs)
        args.update(counters)
        name = record.get("name", "span")
        events.append(
            {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ph": "X",
                "ts": _micros(record.get("start_s", 0.0)),
                "dur": _micros(record.get("duration_s", 0.0)),
                "pid": TRACE_PID,
                "tid": tid,
                "args": args,
            }
        )

    # Cumulative counter tracks, stepped at each span's end time.
    totals: Dict[str, float] = {}
    by_end = sorted(
        spans,
        key=lambda r: r.get("start_s", 0.0) + r.get("duration_s", 0.0),
    )
    for record in by_end:
        counters = record.get("counters") or {}
        end_ts = _micros(
            record.get("start_s", 0.0) + record.get("duration_s", 0.0)
        )
        for key in COUNTER_TRACK_KEYS:
            if key not in counters:
                continue
            totals[key] = totals.get(key, 0.0) + float(counters[key])
            events.append(
                {
                    "name": f"counters/{key}",
                    "ph": "C",
                    "ts": end_ts,
                    "pid": TRACE_PID,
                    "args": {key: totals[key]},
                }
            )

    # Registry counters: one closing sample each, at the trace's end.
    if metrics_snapshot:
        trace_end = max(
            (
                _micros(r.get("start_s", 0.0) + r.get("duration_s", 0.0))
                for r in spans
            ),
            default=0.0,
        )
        for name, metric in sorted(metrics_snapshot.items()):
            if metric.get("type") != "counter":
                continue
            events.append(
                {
                    "name": f"metrics/{name}",
                    "ph": "C",
                    "ts": trace_end,
                    "pid": TRACE_PID,
                    "args": {"value": float(metric.get("value", 0.0))},
                }
            )

    # Sampled-profile overlay: instant events on the timeline plus a
    # cumulative tick-count track (flat where the profiler wasn't live).
    if profile:
        timeline = profile.get("timeline") or []
        for index, (t_s, phase) in enumerate(timeline):
            ts = _micros(float(t_s))
            events.append(
                {
                    "name": f"sample.{phase}",
                    "cat": "profiler",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": TRACE_PID,
                    "tid": 0,
                    "args": {"phase": phase},
                }
            )
            events.append(
                {
                    "name": "profiler/samples",
                    "ph": "C",
                    "ts": ts,
                    "pid": TRACE_PID,
                    "args": {"samples": index + 1},
                }
            )

    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "args": {"name": "repro"},
        }
    )
    for tid in sorted(tids):
        label = "main" if tid == 0 else f"worker-{tid - 1}"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return events


def chrome_trace(
    records: List[Dict[str, Any]],
    metrics_snapshot: Optional[Mapping[str, Mapping[str, float]]] = None,
    meta: Optional[Dict[str, Any]] = None,
    profile: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The full Chrome-trace JSON document for a span-record list."""
    return {
        "traceEvents": chrome_trace_events(records, metrics_snapshot, profile),
        "displayTimeUnit": "ms",
        "otherData": dict(meta or {}),
    }


def write_chrome_trace(
    path: str,
    records: List[Dict[str, Any]],
    metrics_snapshot: Optional[Mapping[str, Mapping[str, float]]] = None,
    meta: Optional[Dict[str, Any]] = None,
    profile: Optional[Mapping[str, Any]] = None,
) -> int:
    """Write a Perfetto-loadable trace file; returns the span-event count."""
    doc = chrome_trace(records, metrics_snapshot, meta, profile)
    with open(path, "w") as handle:
        json.dump(doc, handle)
        handle.write("\n")
    return sum(1 for event in doc["traceEvents"] if event.get("ph") == "X")


def export_perfetto(
    path: str,
    tracer,
    metrics=None,
    meta: Optional[Dict[str, Any]] = None,
    profile=None,
) -> int:
    """Convenience: export a live tracer (and registry) straight to disk.

    ``profile`` accepts the active :class:`~repro.obs.profiler
    .SamplingProfiler`'s ``data``, a raw :class:`ProfileData`, or an
    already-serialized profile dict.
    """
    records = [
        span.to_record()
        for span in sorted(tracer.spans(), key=lambda s: s.span_id)
    ]
    snapshot = metrics.snapshot() if metrics is not None else None
    if profile is not None and hasattr(profile, "to_dict"):
        profile = profile.to_dict()
    return write_chrome_trace(path, records, snapshot, meta, profile)
