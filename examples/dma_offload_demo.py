#!/usr/bin/env python
"""Drive the Graphite DMA engine directly (Section 5).

Shows the hardware interface at full fidelity:

1. hand-build a 64-byte aggregation descriptor (Figure 8) and execute it
   on one engine — a weighted gather-reduce over explicit memory,
2. offload a whole layer through the per-core engines with the pipelined
   Algorithm 5 runner, verify against the reference aggregation, and
3. compare core-side cache accesses against a core-executed run
   (the Table 5 measurement).

Run:  python examples/dma_offload_demo.py
"""

import numpy as np

from repro.dma import (
    AggregationDescriptor,
    BinOp,
    DmaAddressSpace,
    DmaEngine,
    DmaOffloadRunner,
    RedOp,
)
from repro.graphs import load_dataset, synthetic_features
from repro.nn import aggregate
from repro.sim import CoreAggregationSim


def single_descriptor_demo() -> None:
    """Figure 9's example, executed for real: aggregate one vertex."""
    print("== one descriptor, one engine ==")
    # Three 4-element feature rows; gather rows 0 and 2 with weights.
    features = np.arange(12, dtype=np.float32)
    indices = np.array([0, 2], dtype=np.int64)
    factors = np.array([0.5, 2.0], dtype=np.float32)
    output = np.zeros(4, dtype=np.float32)
    status = np.zeros(1, dtype=np.int64)

    space = DmaAddressSpace()
    bases = {"in": 0x1000, "idx": 0x2000, "factor": 0x3000,
             "out": 0x4000, "status": 0x5000}
    space.register(bases["in"], features)
    space.register(bases["idx"], indices)
    space.register(bases["factor"], factors)
    space.register(bases["out"], output)
    space.register(bases["status"], status)

    descriptor = AggregationDescriptor(
        num_values=4,             # E: elements per data block
        num_blocks=2,             # N: rows gathered
        padded_block_bytes=16,    # S: row stride
        idx_addr=bases["idx"],
        in_addr=bases["in"],
        out_addr=bases["out"],
        factor_addr=bases["factor"],
        status_addr=bases["status"],
        red_op=RedOp.SUM,
        bin_op=BinOp.MUL,         # ψ: multiply by the factor array
    )
    print(f"descriptor wire format: {len(descriptor.pack())} bytes")

    engine = DmaEngine(core=0, address_space=space)
    code = engine.execute(descriptor)
    expected = features[0:4] * 0.5 + features[8:12] * 2.0
    print(f"status={code}  out={output}  expected={expected}")
    assert np.allclose(output, expected)


def full_layer_offload() -> None:
    """Algorithm 5 across all 28 engines, checked against the oracle."""
    print("\n== full-layer offload (Algorithm 5) ==")
    graph = load_dataset("wikipedia", scale=0.08, seed=0)
    h = synthetic_features(graph, 64, seed=0)
    runner = DmaOffloadRunner(cache_scale=0.01)
    a, _, report = runner.run_layer(graph, h, aggregator="gcn")
    reference = aggregate(graph, h, "gcn")
    print(f"graph |V|={graph.num_vertices} |E|={graph.num_edges}")
    print(f"descriptors issued : {report.descriptors_issued}")
    print(f"engine DRAM lines  : {report.engine_dram_lines}")
    print(f"engine L3 hits     : {report.engine_l3_hits}")
    print(f"simulated time     : {report.seconds * 1e3:.3f} ms")
    print(f"max error vs oracle: {np.abs(a - reference).max():.2e}")
    assert np.allclose(a, reference, atol=1e-3)

    # Table 5: how many private-cache accesses did the offload save?
    core_run = CoreAggregationSim(cache_scale=0.01).run(graph, 64)
    l1_saved = 1 - report.core_l1_accesses / core_run.l1_accesses
    l2_saved = 1 - report.core_l2_accesses / core_run.l2_accesses
    print(f"L1 accesses avoided: {l1_saved:.1%} (paper Table 5: ~97-98%)")
    print(f"L2 accesses avoided: {l2_saved:.1%} (paper Table 5: ~89-97%)")


def main() -> None:
    single_descriptor_demo()
    full_layer_offload()
    print("\nDMA demo OK")


if __name__ == "__main__":
    main()
