"""Table 5: private-cache access reduction thanks to the DMA engine."""

from conftest import run_experiment

from repro.bench.figures import tab5_cache_reduction


def test_tab5_cache_reduction(benchmark):
    exp = run_experiment(benchmark, tab5_cache_reduction)
    values = {r.label: r.measured for r in exp.rows}
    for name in ("products", "wikipedia"):
        assert values[f"{name} agg-only L1 reduction"] > 0.9
        assert values[f"{name} agg-only L2 reduction"] > 0.9
        assert (
            values[f"{name} fused L1 reduction"]
            < values[f"{name} agg-only L1 reduction"]
        )
    # products' higher degree -> larger fused-mode reduction (the paper's
    # wikipedia explanation in Section 7.3.1).
    assert (
        values["products fused L1 reduction"]
        > values["wikipedia fused L1 reduction"]
    )
