"""Unit tests for task partitioning / load-balance analysis (§4.1)."""

import numpy as np
import pytest

from repro.graphs import load_dataset, star_graph, uniform_graph
from repro.graphs.partition import (
    balance_comparison,
    chunk_boundaries,
    dynamic_schedule,
    static_schedule,
    task_weights,
)


class TestTaskWeights:
    def test_total_is_gathers(self, small_uniform):
        weights = task_weights(small_uniform, 16)
        assert weights.sum() == small_uniform.num_edges + small_uniform.num_vertices

    def test_task_count(self, small_uniform):
        weights = task_weights(small_uniform, 16)
        n = small_uniform.num_vertices
        assert len(weights) == (n + 15) // 16

    def test_order_reshuffles_weights(self):
        graph = star_graph(63)  # hub weight concentrated in task 0
        natural = task_weights(graph, 8)
        moved = task_weights(graph, 8, order=np.arange(63, -1, -1))
        assert natural[0] != moved[0]
        assert natural.sum() == moved.sum()

    def test_invalid_task_size(self, small_uniform):
        with pytest.raises(ValueError):
            task_weights(small_uniform, 0)


class TestSchedules:
    def test_dynamic_never_worse_than_static(self):
        graph = load_dataset("products", scale=0.1, seed=0)
        static, dynamic = balance_comparison(graph, task_size=16, threads=8)
        assert dynamic.makespan <= static.makespan

    def test_skewed_graph_needs_dynamic(self):
        """Power-law degrees create heavy tasks; dynamic scheduling cuts
        the makespan — the paper's §4.1 motivation."""
        graph = load_dataset("twitter", scale=0.1, seed=0)
        static, dynamic = balance_comparison(graph, task_size=8, threads=8)
        assert dynamic.imbalance < static.imbalance

    def test_uniform_graph_balanced_either_way(self):
        graph = uniform_graph(512, 8.0, seed=0)
        static, dynamic = balance_comparison(graph, task_size=16, threads=8)
        assert static.imbalance < 1.5
        assert dynamic.imbalance < 1.2

    def test_work_conserved(self):
        graph = load_dataset("products", scale=0.1, seed=0)
        weights = task_weights(graph, 32)
        static = static_schedule(weights, 8)
        dynamic = dynamic_schedule(weights, 8)
        assert static.thread_work.sum() == pytest.approx(weights.sum())
        assert dynamic.thread_work.sum() == pytest.approx(weights.sum())

    def test_single_thread_degenerate(self):
        weights = np.array([3.0, 5.0])
        report = dynamic_schedule(weights, 1)
        assert report.makespan == 8.0
        assert report.imbalance == 1.0

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            static_schedule(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            dynamic_schedule(np.array([1.0]), 0)


class TestChunkBoundaries:
    def test_cover_all_vertices(self):
        slices = chunk_boundaries(100, 16)
        covered = sum(s.stop - s.start for s in slices)
        assert covered == 100
        assert slices[-1].stop == 100

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_boundaries(10, 0)
