"""Unit tests for the full-batch trainer."""

import numpy as np
import pytest

from repro.graphs import planted_partition_graph, synthetic_features
from repro.nn import Adam, SGD, Trainer, build_model, inference, train_val_split


@pytest.fixture(scope="module")
def community_task():
    graph, labels = planted_partition_graph(150, 3, p_in=0.12, p_out=0.01, seed=0)
    rng = np.random.default_rng(0)
    # Features weakly correlated with the label, so the GNN must use the
    # graph structure to do well.
    features = rng.standard_normal((150, 8)).astype(np.float32)
    features[:, 0] += labels * 0.5
    return graph, features, labels


class TestTrainer:
    def test_loss_decreases(self, community_task):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 16, 3, num_layers=2, seed=0)
        trainer = Trainer(model, Adam(model, lr=0.02))
        history = trainer.fit(graph, features, labels, epochs=15)
        assert history.epochs[-1].loss < history.epochs[0].loss

    def test_accuracy_improves_over_chance(self, community_task):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 16, 3, num_layers=2, seed=1)
        trainer = Trainer(model, Adam(model, lr=0.02))
        history = trainer.fit(graph, features, labels, epochs=40)
        assert history.final_accuracy > 0.6  # chance is ~0.33

    def test_masked_training_reports_val(self, community_task):
        graph, features, labels = community_task
        train_mask, val_mask = train_val_split(graph.num_vertices, 0.5, seed=0)
        model = build_model("gcn", 8, 16, 3, num_layers=2, seed=2)
        trainer = Trainer(model, Adam(model, lr=0.02))
        result = trainer.train_epoch(
            graph, features, labels, train_mask=train_mask, val_mask=val_mask
        )
        assert result.val_accuracy is not None

    def test_sparsity_profile_recorded(self, community_task):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 16, 3, num_layers=2, dropout=0.5, seed=3)
        trainer = Trainer(model, SGD(model, lr=0.1), profile_sparsity=True)
        trainer.fit(graph, features, labels, epochs=2)
        profile = trainer.history.sparsity
        assert profile.layers() == [0, 1]
        # Layer 1's input passed through ReLU + dropout: clearly sparse.
        assert profile.mean(1) > 0.3

    def test_history_losses(self, community_task):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=4)
        trainer = Trainer(model, SGD(model, lr=0.1))
        trainer.fit(graph, features, labels, epochs=3)
        assert len(trainer.history.losses()) == 3


class TestInference:
    def test_logits_shape(self, community_task):
        graph, features, _ = community_task
        model = build_model("gcn", 8, 16, 3, num_layers=2)
        logits = inference(model, graph, features)
        assert logits.shape == (graph.num_vertices, 3)


class TestSplit:
    def test_disjoint_and_complete(self):
        train, val = train_val_split(100, 0.6, seed=0)
        assert train.sum() == 60
        assert val.sum() == 40
        assert not (train & val).any()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_val_split(10, 0.0)
        with pytest.raises(ValueError):
            train_val_split(10, 1.0)
