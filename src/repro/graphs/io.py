"""Graph persistence: npz snapshots and edge-list text files."""

from __future__ import annotations

import os
from typing import Iterable, Tuple, Union

import numpy as np

from .csr import CSRGraph, GraphError

PathLike = Union[str, "os.PathLike[str]"]

_INITIAL_EDGE_CAPACITY = 1024


def save_npz(graph: CSRGraph, path: PathLike) -> None:
    """Save a graph to a compressed ``.npz`` file."""
    np.savez_compressed(
        path, indptr=graph.indptr, indices=graph.indices, name=np.str_(graph.name)
    )


def load_npz(path: PathLike) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`."""
    with np.load(path, allow_pickle=False) as data:
        missing = {"indptr", "indices"} - set(data.files)
        if missing:
            raise GraphError(f"{path}: missing arrays {sorted(missing)}")
        name = str(data["name"]) if "name" in data.files else "graph"
        return CSRGraph(indptr=data["indptr"], indices=data["indices"], name=name)


def _stream_edges(lines: Iterable[str]) -> Tuple[np.ndarray, int]:
    """Parse ``dst src`` lines into a growing ``(m, 2)`` int64 buffer.

    The buffer doubles amortized-O(1) instead of accumulating an O(E)
    Python tuple list, so million-edge lists parse without the
    per-edge Python-object blowup.
    """
    buf = np.empty((_INITIAL_EDGE_CAPACITY, 2), dtype=np.int64)
    count = 0
    max_id = -1
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line[0] in "#%":
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"line {lineno}: expected 'dst src', got {line!r}")
        try:
            dst, src = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"line {lineno}: non-integer vertex id") from exc
        if dst < 0 or src < 0:
            raise GraphError(f"line {lineno}: negative vertex id")
        if count == len(buf):
            grown = np.empty((len(buf) * 2, 2), dtype=np.int64)
            grown[:count] = buf
            buf = grown
        buf[count, 0] = dst
        buf[count, 1] = src
        count += 1
        if dst > max_id:
            max_id = dst
        if src > max_id:
            max_id = src
    return buf[:count], max_id


def parse_edge_list(text: str, name: str = "edgelist") -> CSRGraph:
    """Parse a whitespace-separated ``dst src`` edge list.

    Lines starting with ``#`` or ``%`` are comments.  Vertex count is
    ``max id + 1``.
    """
    edges, max_id = _stream_edges(text.splitlines())
    return CSRGraph.from_edges(max_id + 1, edges, name=name)


def load_edge_list(path: PathLike, name: str = "") -> CSRGraph:
    """Read an edge-list file from disk, streaming line by line."""
    with open(path) as handle:
        edges, max_id = _stream_edges(handle)
    return CSRGraph.from_edges(
        max_id + 1, edges, name=name or os.path.basename(str(path))
    )
