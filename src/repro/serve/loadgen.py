"""Load generator: open-loop arrivals + closed-loop concurrency sweep.

The client side of the serving benchmark.  Two regimes, picked by
``rate``:

* **open loop** (``rate`` in requests/s) — arrivals follow a Poisson
  process (exponential inter-arrival gaps) and are dispatched on a
  thread pool *regardless of completions*, the regime that exposes
  queueing collapse: when the server can't keep up, latency grows
  without bound instead of the client politely slowing down.  When the
  pool is saturated the measured rate degrades toward closed-loop — the
  result reports both offered and achieved rates so the difference is
  visible.
* **closed loop** (``rate=None``) — ``concurrency`` workers each keep
  exactly one request outstanding, the regime for peak-throughput
  measurement (``bench-serve`` uses it).

Latency lands client-side in a private
:class:`~repro.obs.metrics.Histogram` (the server's view excludes
network + HTTP parse time; this one is end-to-end), and the
:class:`LoadgenResult` carries qps + p50/p95/p99 in the exact metric
names the perf-history gate expects.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..obs.metrics import Histogram


@dataclass
class LoadgenResult:
    """One load-generation run's client-side measurements."""

    url: str
    mode: str
    concurrency: int
    offered_rate: Optional[float]  # requests/s target (None = closed loop)
    duration_s: float
    requests: int
    errors: int
    status_counts: Dict[int, int] = field(default_factory=dict)
    latency: Histogram = field(default_factory=Histogram)

    @property
    def qps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    def metrics(self) -> Dict[str, float]:
        """History-row metrics (names gate in the right direction)."""
        return {
            "serve.qps": self.qps,
            "serve.latency_p50_s": self.latency.percentile(50.0),
            "serve.latency_p95_s": self.latency.percentile(95.0),
            "serve.latency_p99_s": self.latency.percentile(99.0),
            "serve.error_fraction": (
                self.errors / self.requests if self.requests else 0.0
            ),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "url": self.url,
            "mode": self.mode,
            "concurrency": self.concurrency,
            "offered_rate": self.offered_rate,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "errors": self.errors,
            "status_counts": {str(k): v for k, v in
                              sorted(self.status_counts.items())},
            **self.metrics(),
        }

    def render(self) -> str:
        lines = [
            f"loadgen {self.url} mode={self.mode} "
            + (f"open-loop {self.offered_rate:g} req/s"
               if self.offered_rate else
               f"closed-loop x{self.concurrency}")
        ]
        lines.append(
            f"  {self.requests} requests in {self.duration_s:.2f}s "
            f"= {self.qps:.1f} qps, {self.errors} error(s)"
        )
        lines.append(
            "  latency p50 {:.2f} ms  p95 {:.2f} ms  p99 {:.2f} ms  "
            "max {:.2f} ms".format(
                self.latency.percentile(50.0) * 1e3,
                self.latency.percentile(95.0) * 1e3,
                self.latency.percentile(99.0) * 1e3,
                self.latency.percentile(100.0) * 1e3,
            )
        )
        if self.status_counts:
            counts = "  ".join(
                f"{status}:{count}"
                for status, count in sorted(self.status_counts.items())
            )
            lines.append(f"  status  {counts}")
        return "\n".join(lines)


def _one_request(
    url: str,
    vertex: int,
    mode: str,
    timeout_s: float,
    result: LoadgenResult,
    lock: threading.Lock,
) -> None:
    target = f"{url.rstrip('/')}/v1/predict?vertex={vertex}&mode={mode}"
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(target, timeout=timeout_s) as response:
            response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        status = error.code
    except OSError:
        status = 0  # connection-level failure
    elapsed = time.perf_counter() - start
    with lock:
        result.requests += 1
        result.status_counts[status] = result.status_counts.get(status, 0) + 1
        if status != 200:
            result.errors += 1
    result.latency.observe(elapsed)  # Histogram carries its own lock


def run_loadgen(
    url: str,
    duration_s: float = 5.0,
    rate: Optional[float] = None,
    concurrency: int = 4,
    num_vertices: int = 1,
    mode: str = "classify",
    seed: int = 0,
    timeout_s: float = 10.0,
) -> LoadgenResult:
    """Drive a serving endpoint for ``duration_s``; see module docstring.

    ``num_vertices`` is the id range queried — vertex ids are sampled
    uniformly from ``[0, num_vertices)``, so 1 hammers a single (soon
    cached) vertex and a large range defeats the cache.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    rng = np.random.default_rng(seed)
    result = LoadgenResult(
        url=url, mode=mode, concurrency=concurrency,
        offered_rate=rate, duration_s=duration_s,
        requests=0, errors=0,
    )
    lock = threading.Lock()
    deadline = time.monotonic() + duration_s
    if rate is not None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            next_arrival = time.monotonic()
            while True:
                now = time.monotonic()
                if now >= deadline:
                    break
                if now < next_arrival:
                    time.sleep(min(next_arrival - now, deadline - now))
                    continue
                vertex = int(rng.integers(0, num_vertices))
                pool.submit(
                    _one_request, url, vertex, mode, timeout_s, result, lock
                )
                next_arrival += float(rng.exponential(1.0 / rate))
    else:
        def worker() -> None:
            while time.monotonic() < deadline:
                vertex = int(rng.integers(0, num_vertices))
                _one_request(url, vertex, mode, timeout_s, result, lock)

        threads = [
            threading.Thread(target=worker, name=f"repro-loadgen-{i}")
            for i in range(concurrency)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return result


def concurrency_sweep(
    url: str,
    levels: Sequence[int],
    duration_s: float = 3.0,
    num_vertices: int = 1,
    mode: str = "classify",
    seed: int = 0,
) -> List[LoadgenResult]:
    """Closed-loop qps/latency at each concurrency level, in order."""
    return [
        run_loadgen(
            url,
            duration_s=duration_s,
            rate=None,
            concurrency=level,
            num_vertices=num_vertices,
            mode=mode,
            seed=seed + level,
        )
        for level in levels
    ]


def write_results(path: str, results: Sequence[LoadgenResult]) -> None:
    with open(path, "w") as handle:
        json.dump([r.to_dict() for r in results], handle, indent=2)
        handle.write("\n")
