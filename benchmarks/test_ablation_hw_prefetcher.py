"""Ablation: hardware stream-prefetcher coverage on GNN traffic.

Quantifies why the aggregation phase needs software help (§4.1) and the
DMA engine (§5): L2 stream prefetchers cover sequential update traffic
almost completely but only a sliver of the gather traffic.
"""

from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.sim.prefetcher import StreamPrefetcher
from repro.sim.trace import layout_for, vertex_trace


def _sweep(ctx):
    graph = ctx.graph("products")
    # Hidden width 32 -> two lines per vector: the short-burst regime
    # where only the paper's explicit 2-line software prefetch helps.
    layout = layout_for(graph, 32)
    exp = Experiment(
        "ablation-hwpf", "Stream-prefetcher coverage: gather vs sequential"
    )
    gather = []
    outputs = []
    for v in range(0, graph.num_vertices, 4):
        gather.extend(vertex_trace(graph, layout, v).gather_lines)
    # The a-matrix write stream is contiguous: every vertex in order.
    for v in range(graph.num_vertices):
        outputs.extend(layout.output_lines(v))
    exp.add(
        "gather-phase coverage",
        StreamPrefetcher().run_trace(gather).coverage,
        unit="frac",
    )
    exp.add(
        "sequential-output coverage",
        StreamPrefetcher().run_trace(sorted(outputs)).coverage,
        unit="frac",
    )
    return exp


def test_hw_prefetcher_ablation(benchmark, ctx):
    exp = run_experiment(benchmark, _sweep, ctx)
    values = {r.label: r.measured for r in exp.rows}
    assert values["sequential-output coverage"] > 0.6
    assert values["gather-phase coverage"] < values["sequential-output coverage"]
