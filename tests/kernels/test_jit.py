"""Unit tests for the JIT kernel-specialization cache (Section 4.1)."""

import numpy as np
import pytest

from repro.graphs import synthetic_features
from repro.kernels import BasicKernel, JitKernelCache, KernelSpec
from repro.nn import aggregate


class TestCache:
    def test_compile_once_per_spec(self, small_products):
        cache = JitKernelCache()
        spec = KernelSpec(feature_len=16, aggregator="gcn")
        cache.specialize(small_products, spec)
        cache.specialize(small_products, spec)
        assert cache.compilations == 1
        assert len(cache) == 1

    def test_new_spec_compiles_again(self, small_products):
        cache = JitKernelCache()
        cache.specialize(small_products, KernelSpec(16, "gcn"))
        cache.specialize(small_products, KernelSpec(32, "gcn"))
        cache.specialize(small_products, KernelSpec(16, "mean"))
        assert cache.compilations == 3

    def test_per_graph_specialization(self, small_products, small_uniform):
        cache = JitKernelCache()
        cache.specialize(small_products, KernelSpec(16, "gcn"))
        cache.specialize(small_uniform, KernelSpec(16, "gcn"))
        assert cache.compilations == 2

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            KernelSpec(feature_len=0, aggregator="gcn")

    def test_specialized_kernel_checks_width(self, small_products):
        cache = JitKernelCache()
        kernel = cache.specialize(small_products, KernelSpec(16, "gcn"))
        wrong = np.ones((small_products.num_vertices, 8), dtype=np.float32)
        with pytest.raises(ValueError):
            kernel(wrong, 0)

    def test_specialized_kernel_correct(self, small_products):
        cache = JitKernelCache()
        kernel = cache.specialize(small_products, KernelSpec(12, "mean"))
        h = synthetic_features(small_products, 12, seed=0)
        reference = aggregate(small_products, h, "mean")
        for v in (0, 5, small_products.num_vertices - 1):
            np.testing.assert_allclose(kernel(h, v), reference[v], atol=1e-5)


class TestAmortization:
    def test_repeated_layers_amortize(self, small_products):
        """The training-loop pattern: the second epoch compiles nothing."""
        cache = JitKernelCache()
        kernel = BasicKernel(jit_cache=cache)
        h = synthetic_features(small_products, 16, seed=1)
        _, first = kernel.aggregate(small_products, h, "gcn")
        _, second = kernel.aggregate(small_products, h, "gcn")
        assert first.jit_compilations == 1
        assert second.jit_compilations == 0
