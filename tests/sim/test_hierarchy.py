"""Unit tests for the memory hierarchy model."""

import pytest

from repro.sim import L1_LATENCY, L2_LATENCY, L3_LATENCY, MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(cache_scale=0.05)


class TestLevels:
    def test_cold_access_reaches_dram(self, hierarchy):
        result = hierarchy.access(0, 0x1000)
        assert result.level == "DRAM"

    def test_warm_access_hits_l1(self, hierarchy):
        hierarchy.access(0, 0x1000)
        result = hierarchy.access(0, 0x1000)
        assert result.level == "L1"
        assert result.latency_cycles == L1_LATENCY

    def test_other_core_misses_private_hits_l3(self, hierarchy):
        hierarchy.access(0, 0x1000)  # core 0 warms L3 too
        result = hierarchy.access(1, 0x1000)
        assert result.level == "L3"
        assert result.latency_cycles == L3_LATENCY

    def test_core_out_of_range(self, hierarchy):
        with pytest.raises(IndexError):
            hierarchy.access(99, 0)

    def test_invalid_cache_scale(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(cache_scale=0.0)


class TestBypassPath:
    def test_bypass_skips_private_caches(self, hierarchy):
        hierarchy.access(0, 0x2000, bypass_private=True)
        assert hierarchy.l1[0].stats.accesses == 0
        assert hierarchy.l2[0].stats.accesses == 0
        assert hierarchy.l3.stats.accesses == 1

    def test_bypass_still_benefits_from_l3(self, hierarchy):
        hierarchy.access(0, 0x2000, bypass_private=True)
        result = hierarchy.access(0, 0x2000, bypass_private=True)
        assert result.level == "L3"

    def test_bypass_does_not_pollute_private(self, hierarchy):
        hierarchy.access(0, 0x3000, bypass_private=True)
        # A later demand access from core 0 misses L1/L2 (no pollution).
        result = hierarchy.access(0, 0x3000)
        assert result.level == "L3"


class TestDmaInstall:
    def test_installed_line_hits_l2(self, hierarchy):
        hierarchy.dma_install_output(2, 0x4000)
        result = hierarchy.access(2, 0x4000)
        assert result.level == "L2"
        assert result.latency_cycles == L2_LATENCY

    def test_install_counts(self, hierarchy):
        hierarchy.dma_install_output(0, 0x4000)
        assert hierarchy.l2[0].stats.installs == 1


class TestStats:
    def test_l2_miss_rate(self, hierarchy):
        hierarchy.access(0, 0)  # L2 miss
        hierarchy.access(0, 0)  # L1 hit (L2 untouched)
        assert hierarchy.l2_miss_rate() == 1.0

    def test_reset(self, hierarchy):
        hierarchy.access(0, 0)
        hierarchy.reset_stats()
        assert hierarchy.l1_accesses() == 0
        assert hierarchy.dram.stats.lines_served == 0


class TestNocIntegration:
    def test_noc_makes_l3_latency_distance_dependent(self):
        from repro.sim import MeshNoc

        noc = MeshNoc(cores=28, hop_cycles=3.0, base_cycles=4.0)
        hierarchy = MemoryHierarchy(cache_scale=0.05, noc=noc)
        addr = 0x1000
        hierarchy.access(0, addr)  # warm L3
        home = noc.home_slice(addr)
        near = hierarchy.access(home, addr, bypass_private=True)
        # A distant core pays more hops for the same line.
        far_core = max(range(28), key=lambda c: noc.hops(c, home))
        far = hierarchy.access(far_core, addr, bypass_private=True)
        assert near.level == "L3" and far.level == "L3"
        assert far.latency_cycles > near.latency_cycles

    def test_default_keeps_flat_latency(self):
        hierarchy = MemoryHierarchy(cache_scale=0.05)
        addr = 0x2000
        hierarchy.access(0, addr)
        result = hierarchy.access(1, addr)
        assert result.latency_cycles == L3_LATENCY
