"""Unit tests for the full-batch trainer."""

import logging
import math

import numpy as np
import pytest

from repro.graphs import planted_partition_graph, synthetic_features
from repro.nn import Adam, SGD, Trainer, build_model, inference, train_val_split
from repro.nn.training import TrainingHistory
from repro.obs.events import EventLog, validate_events
from repro.obs.health import HealthError, HealthMonitor


@pytest.fixture(scope="module")
def community_task():
    graph, labels = planted_partition_graph(150, 3, p_in=0.12, p_out=0.01, seed=0)
    rng = np.random.default_rng(0)
    # Features weakly correlated with the label, so the GNN must use the
    # graph structure to do well.
    features = rng.standard_normal((150, 8)).astype(np.float32)
    features[:, 0] += labels * 0.5
    return graph, features, labels


class TestTrainer:
    def test_loss_decreases(self, community_task):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 16, 3, num_layers=2, seed=0)
        trainer = Trainer(model, Adam(model, lr=0.02))
        history = trainer.fit(graph, features, labels, epochs=15)
        assert history.epochs[-1].loss < history.epochs[0].loss

    def test_accuracy_improves_over_chance(self, community_task):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 16, 3, num_layers=2, seed=1)
        trainer = Trainer(model, Adam(model, lr=0.02))
        history = trainer.fit(graph, features, labels, epochs=40)
        assert history.final_accuracy > 0.6  # chance is ~0.33

    def test_masked_training_reports_val(self, community_task):
        graph, features, labels = community_task
        train_mask, val_mask = train_val_split(graph.num_vertices, 0.5, seed=0)
        model = build_model("gcn", 8, 16, 3, num_layers=2, seed=2)
        trainer = Trainer(model, Adam(model, lr=0.02))
        result = trainer.train_epoch(
            graph, features, labels, train_mask=train_mask, val_mask=val_mask
        )
        assert result.val_accuracy is not None

    def test_sparsity_profile_recorded(self, community_task):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 16, 3, num_layers=2, dropout=0.5, seed=3)
        trainer = Trainer(model, SGD(model, lr=0.1), profile_sparsity=True)
        trainer.fit(graph, features, labels, epochs=2)
        profile = trainer.history.sparsity
        assert profile.layers() == [0, 1]
        # Layer 1's input passed through ReLU + dropout: clearly sparse.
        assert profile.mean(1) > 0.3

    def test_history_losses(self, community_task):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=4)
        trainer = Trainer(model, SGD(model, lr=0.1))
        trainer.fit(graph, features, labels, epochs=3)
        assert len(trainer.history.losses()) == 3

    def test_empty_history_final_values_are_nan(self):
        history = TrainingHistory()
        assert math.isnan(history.final_loss)
        assert math.isnan(history.final_accuracy)

    def test_verbose_fit_logs_not_prints(self, community_task, caplog, capsys):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=5)
        trainer = Trainer(model, SGD(model, lr=0.1))
        with caplog.at_level(logging.INFO, logger="repro.nn.training"):
            trainer.fit(graph, features, labels, epochs=2, verbose=True)
        lines = [r.message for r in caplog.records if "epoch" in r.message]
        assert len(lines) == 2
        assert "loss" in lines[0] and "train-acc" in lines[0]
        assert capsys.readouterr().out == ""  # nothing on stdout

    def test_verbose_fit_logs_val_accuracy(self, community_task, caplog):
        graph, features, labels = community_task
        train_mask, val_mask = train_val_split(graph.num_vertices, 0.5, seed=0)
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=6)
        trainer = Trainer(model, SGD(model, lr=0.1))
        with caplog.at_level(logging.INFO, logger="repro.nn.training"):
            trainer.fit(
                graph, features, labels, epochs=1,
                train_mask=train_mask, val_mask=val_mask, verbose=True,
            )
        assert any("val-acc" in r.message for r in caplog.records)


class TestTrainerObservability:
    def test_epoch_events_emitted_and_valid(self, community_task, tmp_path):
        graph, features, labels = community_task
        train_mask, val_mask = train_val_split(graph.num_vertices, 0.5, seed=0)
        model = build_model("gcn", 8, 16, 3, num_layers=2, dropout=0.5, seed=0)
        log = EventLog(str(tmp_path / "run.jsonl"), meta={"test": True})
        trainer = Trainer(model, Adam(model, lr=0.02), event_log=log)
        trainer.fit(
            graph, features, labels, epochs=3,
            train_mask=train_mask, val_mask=val_mask,
        )
        log.close()
        assert len(log) == 3
        validate_events(log.events)
        event = log.events[-1]
        assert event["epoch"] == 2
        assert event["val_accuracy"] is not None
        # Per-layer signals cover both layers.
        assert set(event["grad_norms"]) == {"0", "1"}
        assert set(event["weight_norms"]) == {"0", "1"}
        assert set(event["sparsity"]) == {"0", "1"}
        # Layer 1's input went through ReLU + dropout: clearly sparse.
        assert event["sparsity"]["1"] > 0.3
        assert event["grad_norms"]["0"]["weight"] > 0.0
        # SpMM-oracle run: nothing realized, but the model predicts what
        # compression would have saved on the measured sparsity.
        assert event["compression"]["realized_dram_bytes_saved"] == 0.0
        assert event["compression"]["predicted_dram_bytes_saved"] > 0.0
        assert event["health_issues"] == []
        assert event["wall_time_s"] > 0.0

    def test_event_log_without_profile_sparsity(self, community_task, tmp_path):
        # Sparsity appears in events even when the history profile is off.
        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=1)
        log = EventLog(str(tmp_path / "run.jsonl"))
        trainer = Trainer(
            model, SGD(model, lr=0.1), profile_sparsity=False, event_log=log
        )
        trainer.train_epoch(graph, features, labels)
        log.close()
        assert set(log.events[0]["sparsity"]) == {"0", "1"}
        assert trainer.history.sparsity.layers() == []  # profile stayed off

    def test_compression_realized_with_compressed_kernel(
        self, community_task, tmp_path
    ):
        from repro.kernels import CompressedKernel

        graph, features, labels = community_task
        model = build_model("gcn", 8, 16, 3, num_layers=2, dropout=0.5, seed=2)
        log = EventLog(None)
        trainer = Trainer(
            model, Adam(model, lr=0.02),
            aggregation_kernel=CompressedKernel(), event_log=log,
        )
        trainer.fit(graph, features, labels, epochs=2)
        compression = log.events[-1]["compression"]
        # Layer-1 inputs are sparse, so the compressed kernel skips real
        # zero rows and the prediction tracks the same quantity.
        assert compression["realized_dram_bytes_saved"] > 0.0
        assert compression["predicted_dram_bytes_saved"] > 0.0

    def test_injected_nan_detected_within_one_epoch(self, community_task):
        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=3)
        trainer = Trainer(model, SGD(model, lr=0.1), health=HealthMonitor())
        trainer.train_epoch(graph, features, labels)
        model.layers[1].weight[0, 0] = np.nan  # corrupt a weight
        with pytest.raises(HealthError) as excinfo:
            trainer.train_epoch(graph, features, labels)
        issues = excinfo.value.issues
        assert any(issue.layer == 1 for issue in issues)
        assert all(issue.epoch == 1 for issue in issues)

    def test_failing_epoch_still_logged(self, community_task, tmp_path):
        # The event log keeps the evidence of the epoch that failed.
        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=3)
        log = EventLog(str(tmp_path / "run.jsonl"))
        trainer = Trainer(
            model, SGD(model, lr=0.1), event_log=log, health=HealthMonitor()
        )
        model.layers[0].weight[:] = np.nan
        with pytest.raises(HealthError):
            trainer.train_epoch(graph, features, labels)
        log.close()
        assert len(log) == 1
        assert "non_finite" in log.events[0]["health_issues"]

    def test_default_trainer_pays_nothing(self, community_task, monkeypatch):
        # With event_log, health, and rules left off, the observation
        # hook, the live publisher, and the norm capture must never run.
        from repro.nn.model import GNNModel

        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=4)
        trainer = Trainer(model, SGD(model, lr=0.1))

        def boom(*args, **kwargs):  # pragma: no cover - must not fire
            raise AssertionError("observability ran on the default path")

        monkeypatch.setattr(trainer, "_observe_epoch", boom)
        monkeypatch.setattr(trainer, "_publish_live", boom)
        monkeypatch.setattr(GNNModel, "grad_norms", staticmethod(boom))
        monkeypatch.setattr(GNNModel, "weight_norms", boom)
        trainer.train_epoch(graph, features, labels)


class TestTrainerLiveTelemetry:
    def test_train_gauges_published(self, community_task):
        from repro import obs

        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=5)
        trainer = Trainer(model, SGD(model, lr=0.1))
        _, metrics = obs.enable()
        try:
            result = trainer.train_epoch(graph, features, labels)
            trainer.train_epoch(graph, features, labels)
            snap = metrics.snapshot()
        finally:
            obs.disable()
        assert snap["train.epoch"]["value"] == 1.0  # last epoch wins
        assert snap["train.loss"]["value"] > 0.0
        assert 0.0 <= snap["train.train_accuracy"]["value"] <= 1.0
        assert snap["train.wall_time_s"]["value"] > 0.0
        assert snap["train.epoch_time_s"]["count"] == 2
        assert result.loss > 0.0

    def test_rules_fire_and_mark_events(self, community_task, tmp_path):
        from repro.obs.rules import RuleEngine

        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=5)
        log = EventLog(str(tmp_path / "run.jsonl"))
        rules = RuleEngine("loss_cap: train.loss < 1e-6")
        trainer = Trainer(
            model, SGD(model, lr=0.1), event_log=log, rules=rules
        )
        trainer.train_epoch(graph, features, labels)
        trainer.train_epoch(graph, features, labels)
        log.close()
        assert not rules.ok
        assert rules.evaluations == 2
        # Fired rules ride along as slo: markers in the event stream.
        assert log.events[0]["health_issues"] == ["slo:loss_cap"]
        validate_events(log.events)

    def test_rules_without_registry_see_train_plane(self, community_task):
        # No telemetry enabled: the trainer synthesizes the train.*
        # snapshot so rules still evaluate.
        from repro.obs.rules import RuleEngine

        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=5)
        rules = RuleEngine(
            "loss_cap: train.loss < 1e-6\nrss: proc.rss_bytes < 1"
        )
        trainer = Trainer(model, SGD(model, lr=0.1), rules=rules)
        trainer.train_epoch(graph, features, labels)
        assert rules.active == ["loss_cap"]  # proc.* absent -> skipped

    def test_compliant_rules_stay_quiet(self, community_task, tmp_path):
        from repro.obs.rules import RuleEngine

        graph, features, labels = community_task
        model = build_model("gcn", 8, 8, 3, num_layers=2, seed=5)
        log = EventLog(None)
        rules = RuleEngine("loss_cap: train.loss < 1e9")
        trainer = Trainer(
            model, SGD(model, lr=0.1), event_log=log, rules=rules
        )
        trainer.train_epoch(graph, features, labels)
        log.close()
        assert rules.ok
        assert log.events[0]["health_issues"] == []


class TestInference:
    def test_logits_shape(self, community_task):
        graph, features, _ = community_task
        model = build_model("gcn", 8, 16, 3, num_layers=2)
        logits = inference(model, graph, features)
        assert logits.shape == (graph.num_vertices, 3)


class TestSplit:
    def test_disjoint_and_complete(self):
        train, val = train_val_split(100, 0.6, seed=0)
        assert train.sum() == 60
        assert val.sum() == 40
        assert not (train & val).any()

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_val_split(10, 0.0)
        with pytest.raises(ValueError):
            train_val_split(10, 1.0)
