"""Per-artifact experiment definitions (one function per table/figure).

Each function reproduces one paper artifact end-to-end on the dataset
twins and returns an :class:`repro.bench.harness.Experiment` with the
published values alongside.  The ``benchmarks/`` tree is a thin layer
over these functions; they are also exercised directly by integration
tests.

Scale notes: the software-model experiments (Fig. 11/13/14/15, Tables
3-4) run at twin scale 0.5 by default; the trace-driven hardware
experiments (Fig. 12/16, Table 5, Section 7.3.2) run at a smaller scale
because every cache line access is simulated in Python — mirroring the
paper, whose own "hardware evaluation is limited to products and
wikipedia due to very long simulation times" (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.datasets import input_feature_size, load_dataset
from ..graphs.reorder import locality_order
from ..perf.cost_model import CostModel
from ..perf.topdown import characterize
from ..dma.offload import DmaOffloadRunner
from ..gpu.gpu_model import epoch_breakdown
from ..sim.core_sim import CoreAggregationSim
from ..graphs.stats import graph_stats
from . import paper_values as paper
from .harness import Experiment

#: Default twin scale for the analytical (software) experiments.
SOFTWARE_SCALE = 0.5

#: Default twin scale for trace-driven (hardware) experiments.
HARDWARE_SCALE = 0.15

#: Feature width used in the hardware simulations (kept modest so the
#: line-accurate Python simulation finishes quickly).
HARDWARE_FEATURES = 128

#: Cache shrink factor for hardware twins: the same ratio argument as the
#: analytical plane — caches shrink with the workload.
HARDWARE_CACHE_SCALE = 0.002

HIDDEN_FEATURES = 256
EVAL_SPARSITY = 0.5
GNN_MODELS = ("gcn", "sage")
SOFTWARE_VARIANTS = ("mkl", "basic", "fusion", "compression", "combined")


@dataclass
class BenchContext:
    """Caches graphs and cost models across experiments."""

    scale: float = SOFTWARE_SCALE
    seed: int = 0
    _graphs: Dict[str, CSRGraph] = field(default_factory=dict)
    _models: Dict[str, CostModel] = field(default_factory=dict)

    def graph(self, name: str) -> CSRGraph:
        if name not in self._graphs:
            self._graphs[name] = load_dataset(name, scale=self.scale, seed=self.seed)
        return self._graphs[name]

    def cost_model(self, name: str) -> CostModel:
        if name not in self._models:
            self._models[name] = CostModel(self.graph(name))
        return self._models[name]

    def f_input(self, name: str) -> int:
        return input_feature_size(name, 1.0)


# ----------------------------------------------------------------------
# Motivation
# ----------------------------------------------------------------------
#: Mini-batch sizes scale with the twin: the paper's 1024/2048/4096 on
#: 2.45M vertices keep the same batches-per-epoch ratio as these on the
#: ~2-4k vertex twin.
FIG2_BATCH_MAP = {1024: 32, 2048: 64, 4096: 128}


def fig2_gpu_sampling(ctx: Optional[BenchContext] = None) -> Experiment:
    """Figure 2: sampled-GNN GPU training epoch breakdown.

    Absolute seconds are not comparable across a 1000x graph-scale gap,
    so the rows report the two *shape* facts of the figure: sampling's
    share of epoch time (>80% in the paper) and the epoch time relative
    to batch-1024 (smaller batches are slower).
    """
    ctx = ctx or BenchContext()
    exp = Experiment("fig2", "Sampled GraphSAGE on GPU: epoch time breakdown")
    graph = ctx.graph("products")
    breakdowns = {
        batch: epoch_breakdown(graph, batch_size=FIG2_BATCH_MAP[batch])
        for batch in (1024, 2048, 4096)
    }
    reference_total = breakdowns[1024].total_seconds
    for batch, result in breakdowns.items():
        pub = paper.FIG2_GPU_SAMPLING[batch]
        pub_total = pub["sampling"] + pub["gnn"]
        exp.add(
            f"batch-{batch} sampling share",
            result.sampling_share,
            pub["sampling"] / pub_total,
            unit="frac",
        )
        exp.add(
            f"batch-{batch} epoch time (norm.)",
            result.total_seconds / reference_total,
            pub_total / (paper.FIG2_GPU_SAMPLING[1024]["sampling"]
                         + paper.FIG2_GPU_SAMPLING[1024]["gnn"]),
            unit="frac",
        )
    exp.note("batch sizes scaled with the twin (1024->32 etc.); shapes compared")
    return exp


def fig3_topdown(ctx: Optional[BenchContext] = None) -> Experiment:
    """Figure 3: pipeline-slot breakdown of the DGL/DistGNN baseline."""
    ctx = ctx or BenchContext()
    exp = Experiment("fig3", "Pipeline slots of full-batch SAGE training (baseline)")
    model = ctx.cost_model("products")
    report = characterize(
        model, "distgnn", ctx.f_input("products"), HIDDEN_FEATURES, training=True,
        sparsity=EVAL_SPARSITY,
    )
    exp.add("retiring", report.retiring, paper.FIG3_TOPDOWN["retiring"], "frac")
    exp.add("frontend bound", report.frontend_bound, paper.FIG3_TOPDOWN["frontend_bound"], "frac")
    exp.add("core bound", report.core_bound, paper.FIG3_TOPDOWN["core_bound"], "frac")
    exp.add("memory bound", report.memory_bound, paper.FIG3_TOPDOWN["memory_bound"], "frac")
    return exp


def tab3_datasets(ctx: Optional[BenchContext] = None) -> Experiment:
    """Table 3: dataset statistics of the twins vs the originals."""
    ctx = ctx or BenchContext()
    exp = Experiment("tab3", "Dataset twins vs Table 3 (mean degree preserved)")
    for name in ("products", "wikipedia", "papers", "twitter"):
        stats = graph_stats(ctx.graph(name))
        exp.add(
            f"{name} mean degree",
            stats.mean_degree,
            paper.TAB3_DATASETS[name]["mean_degree"],
            unit="deg",
        )
        exp.add(f"{name} vertices (twin)", stats.num_vertices, None, unit="")
        exp.add(f"{name} edges (twin)", stats.num_edges, None, unit="")
    exp.note("twins preserve degree shape, not absolute size (see DESIGN.md)")
    return exp


# ----------------------------------------------------------------------
# Software evaluation
# ----------------------------------------------------------------------
def fig11_software_speedups(
    ctx: Optional[BenchContext] = None,
    training: bool = False,
    gnn: str = "gcn",
) -> Experiment:
    """Figure 11: software speedups over DistGNN (inference or training)."""
    ctx = ctx or BenchContext()
    which = "training" if training else "inference"
    exp = Experiment(
        "fig11b" if training else "fig11a",
        f"Software speedups over DistGNN, {gnn.upper()} {which} @50% sparsity",
    )
    published = (paper.FIG11B_TRAINING if training else paper.FIG11A_INFERENCE)[gnn]
    variants = list(SOFTWARE_VARIANTS) + (["c-locality"] if training else [])
    for name in ("products", "wikipedia", "papers", "twitter"):
        model = ctx.cost_model(name)
        for variant in variants:
            speedup = model.speedup(
                variant,
                ctx.f_input(name),
                HIDDEN_FEATURES,
                training=training,
                sparsity=EVAL_SPARSITY,
            )
            exp.add(f"{name} {variant}", speedup, published[name].get(variant))
    return exp


def fig13_fusion_breakdown(ctx: Optional[BenchContext] = None) -> Experiment:
    """Figure 13: basic agg/update split and fused time, GCN hidden layers."""
    ctx = ctx or BenchContext()
    exp = Experiment(
        "fig13", "Hidden-layer time breakdown, normalized to basic (GCN)"
    )
    from ..perf.cost_model import VARIANTS
    from ..perf.traffic import LayerShape

    for name in ("products", "wikipedia", "papers", "twitter"):
        model = ctx.cost_model(name)
        graph = ctx.graph(name)
        shape = LayerShape(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            f_in=HIDDEN_FEATURES,
            f_out=HIDDEN_FEATURES,
        )
        hit = model.hit_rate("natural")
        basic = model.layer_forward(VARIANTS["basic"], shape, hit_rate=hit)
        fused_inf = model.layer_forward(
            VARIANTS["fusion"], shape, training=False, hit_rate=hit
        )
        fused_train = model.layer_forward(
            VARIANTS["fusion"], shape, training=True, hit_rate=hit
        )
        pub = paper.FIG13_FUSION_BREAKDOWN[name]
        exp.add(
            f"{name} basic aggregation share",
            basic.aggregation / basic.total,
            pub["aggregation"],
            unit="frac",
        )
        exp.add(
            f"{name} basic update share",
            basic.update / basic.total,
            pub["update"],
            unit="frac",
        )
        exp.add(
            f"{name} fused inference (norm.)",
            fused_inf.total / basic.total,
            pub["fused_inference"],
            unit="frac",
        )
        exp.add(
            f"{name} fused fwd-training (norm.)",
            fused_train.total / basic.total,
            pub["fused_training"],
            unit="frac",
        )
    return exp


def fig14_compression_sweep(
    ctx: Optional[BenchContext] = None, training: bool = False
) -> Experiment:
    """Figure 14: compression speedup over basic across sparsities."""
    ctx = ctx or BenchContext()
    which = "training" if training else "inference"
    exp = Experiment("fig14", f"compression over basic vs sparsity, GCN {which}")
    published = paper.FIG14_COMPRESSION[which]
    for name in ("products", "wikipedia", "papers", "twitter"):
        model = ctx.cost_model(name)
        for sparsity in (0.1, 0.3, 0.5, 0.7, 0.9):
            speedup = model.speedup(
                "compression",
                ctx.f_input(name),
                HIDDEN_FEATURES,
                training=training,
                sparsity=sparsity,
                baseline="basic",
            )
            exp.add(
                f"{name} @{int(sparsity * 100)}%",
                speedup,
                published[name][sparsity],
            )
    return exp


def fig15_locality(ctx: Optional[BenchContext] = None) -> Experiment:
    """Figure 15: combined and c-locality over the randomized average."""
    ctx = ctx or BenchContext()
    exp = Experiment("fig15", "Speedup over randomized order, GCN training")
    for name in ("products", "wikipedia", "papers", "twitter"):
        model = ctx.cost_model(name)
        f_in = ctx.f_input(name)
        # 5-run randomized average (the paper's reference point).
        random_times = [
            model.training_epoch_time(
                "randomized", f_in, HIDDEN_FEATURES, sparsity=EVAL_SPARSITY, seed=s
            ).total
            for s in range(5)
        ]
        randomized = float(np.mean(random_times))
        combined = model.training_epoch_time(
            "combined", f_in, HIDDEN_FEATURES, sparsity=EVAL_SPARSITY
        ).total
        loc = model.training_epoch_time(
            "c-locality", f_in, HIDDEN_FEATURES, sparsity=EVAL_SPARSITY
        ).total
        pub = paper.FIG15_LOCALITY[name]
        exp.add(f"{name} combined", randomized / combined, pub["combined"])
        exp.add(f"{name} locality", randomized / loc, pub["locality"])
    return exp


def tab4_characterization(ctx: Optional[BenchContext] = None) -> Experiment:
    """Table 4: memory characterization of GCN training."""
    ctx = ctx or BenchContext()
    exp = Experiment("tab4", "GCN training characterization (key columns)")
    for name in ("products", "wikipedia", "papers", "twitter"):
        model = ctx.cost_model(name)
        for variant in ("distgnn", "mkl", "combined", "c-locality"):
            report = characterize(
                model, variant, ctx.f_input(name), HIDDEN_FEATURES,
                training=True, sparsity=EVAL_SPARSITY,
            )
            pub = paper.TAB4_CHARACTERIZATION[name][variant]
            exp.add(f"{name} {variant} retiring", report.retiring, pub["retiring"], "frac")
            exp.add(
                f"{name} {variant} memory-bound",
                report.memory_bound,
                pub["memory_bound"],
                "frac",
            )
            exp.add(
                f"{name} {variant} DRAM-BW-bound",
                report.dram_bandwidth_bound,
                pub["dram_bw"],
                "frac",
            )
            exp.add(
                f"{name} {variant} fill-buffer-full",
                report.fill_buffer_full,
                pub["fill_full"],
                "frac",
            )
    return exp


# ----------------------------------------------------------------------
# Hardware evaluation (trace-driven)
# ----------------------------------------------------------------------
def _hardware_setup(name: str, scale: float, seed: int = 0):
    graph = load_dataset(name, scale=scale, seed=seed)
    return graph


def fig12_dma_speedups(
    training: bool = False,
    scale: float = HARDWARE_SCALE,
) -> Experiment:
    """Figure 12: simulated speedups of fusion and fusion+DMA over DistGNN."""
    which = "training" if training else "inference"
    exp = Experiment(
        "fig12b" if training else "fig12a",
        f"Simulated {which} speedup over DistGNN (products & wikipedia twins)",
    )
    published = (paper.FIG12B_DMA_TRAINING if training else paper.FIG12A_DMA_INFERENCE)["gcn"]
    f_in = HARDWARE_FEATURES
    f_out = HARDWARE_FEATURES
    for name in ("products", "wikipedia"):
        graph = _hardware_setup(name, scale)
        sim = CoreAggregationSim(cache_scale=HARDWARE_CACHE_SCALE)
        # DistGNN baseline: unfused — aggregation then serial update.
        agg = sim.run(graph, f_in)
        update_cycles = (
            2.0
            * (graph.num_vertices / sim.machine.cores)
            * f_in
            * f_out
            / (sim.machine.flops_per_cycle_per_core * sim.machine.gemm_efficiency)
        )
        baseline_cycles = agg.cycles / 0.92 + update_cycles  # no prefetch tuning
        fused = CoreAggregationSim(cache_scale=HARDWARE_CACHE_SCALE).run(
            graph, f_in, fused_update_features=f_out
        )
        runner = DmaOffloadRunner(cache_scale=HARDWARE_CACHE_SCALE)
        import numpy as _np

        h = _np.zeros((graph.num_vertices, f_in), dtype=_np.float32)
        from ..kernels.base import UpdateParams

        params = UpdateParams(
            weight=_np.zeros((f_in, f_out), dtype=_np.float32),
            bias=_np.zeros(f_out, dtype=_np.float32),
        )
        _, _, dma = runner.run_layer(graph, h, params=params)

        def epoch(cycles_forward: float) -> float:
            # Training: forward + backward (transposed gather + 2 GEMMs),
            # approximated as 1.9x the forward cycles for every variant.
            return cycles_forward * (1.9 if training else 1.0)

        pub = published[name]
        exp.add(f"{name} fusion", epoch(baseline_cycles) / epoch(fused.cycles), pub["fusion"])
        exp.add(
            f"{name} fusion+DMA",
            epoch(baseline_cycles) / epoch(dma.cycles),
            pub["fusion+DMA"],
        )
        if training:
            # Physically relabel for the locality runs: after reordering,
            # the CSR arrays are re-laid-out so index reads stay
            # sequential (training amortizes this one-time cost, §4.4).
            from ..graphs.reorder import apply_order

            graph_loc = apply_order(graph, locality_order(graph))
            fused_loc = CoreAggregationSim(cache_scale=HARDWARE_CACHE_SCALE).run(
                graph_loc, f_in, fused_update_features=f_out
            )
            runner_loc = DmaOffloadRunner(cache_scale=HARDWARE_CACHE_SCALE)
            h_loc = _np.zeros((graph_loc.num_vertices, f_in), dtype=_np.float32)
            _, _, dma_loc = runner_loc.run_layer(graph_loc, h_loc, params=params)
            exp.add(
                f"{name} fusion+locality",
                epoch(baseline_cycles) / epoch(fused_loc.cycles),
                pub["fusion+locality"],
            )
            exp.add(
                f"{name} fusion+DMA+locality",
                epoch(baseline_cycles) / epoch(dma_loc.cycles),
                pub["fusion+DMA+locality"],
            )
    return exp


def fig16_tracking_table(scale: float = HARDWARE_SCALE) -> Experiment:
    """Figure 16: DMA-aggregation time vs tracking-table entries."""
    exp = Experiment(
        "fig16", "DMA-aggregation time on wikipedia vs tracking-table entries"
    )
    graph = _hardware_setup("wikipedia", scale)
    h = np.zeros((graph.num_vertices, HARDWARE_FEATURES), dtype=np.float32)
    times = {}
    for entries in (8, 16, 32, 64):
        runner = DmaOffloadRunner(
            cache_scale=HARDWARE_CACHE_SCALE, tracking_entries=entries
        )
        _, _, report = runner.run_layer(graph, h, params=None)
        times[entries] = report.cycles
    for entries in (8, 16, 32, 64):
        exp.add(
            f"{entries} entries (norm.)",
            times[entries] / times[8],
            paper.FIG16_TRACKING_TABLE[entries],
            unit="frac",
        )
    return exp


def tab5_cache_reduction(scale: float = HARDWARE_SCALE) -> Experiment:
    """Table 5: private-cache access reduction from the DMA engine."""
    exp = Experiment("tab5", "Private cache access reduction with DMA")
    from ..kernels.base import UpdateParams

    f_in = HARDWARE_FEATURES
    f_out = HARDWARE_FEATURES
    for name in ("products", "wikipedia"):
        graph = _hardware_setup(name, scale)
        h = np.zeros((graph.num_vertices, f_in), dtype=np.float32)
        params = UpdateParams(
            weight=np.zeros((f_in, f_out), dtype=np.float32),
            bias=np.zeros(f_out, dtype=np.float32),
        )
        pub = paper.TAB5_CACHE_REDUCTION[name]

        core_agg = CoreAggregationSim(cache_scale=HARDWARE_CACHE_SCALE).run(graph, f_in)
        dma_agg_runner = DmaOffloadRunner(cache_scale=HARDWARE_CACHE_SCALE)
        _, _, dma_agg = dma_agg_runner.run_layer(graph, h, params=None)
        exp.add(
            f"{name} agg-only L1 reduction",
            1.0 - dma_agg.core_l1_accesses / core_agg.l1_accesses,
            pub["agg_only"]["l1"],
            unit="frac",
        )
        exp.add(
            f"{name} agg-only L2 reduction",
            1.0 - dma_agg.core_l2_accesses / core_agg.l2_accesses,
            pub["agg_only"]["l2"],
            unit="frac",
        )

        core_fused = CoreAggregationSim(cache_scale=HARDWARE_CACHE_SCALE).run(
            graph, f_in, fused_update_features=f_out
        )
        # Fused core run also writes/reads h_out: add those accesses.
        fused_l1 = core_fused.l1_accesses + graph.num_vertices * (f_out * 4 // 64 + 1)
        fused_l2 = core_fused.l2_accesses
        dma_fused_runner = DmaOffloadRunner(cache_scale=HARDWARE_CACHE_SCALE)
        _, _, dma_fused = dma_fused_runner.run_layer(graph, h, params=params)
        exp.add(
            f"{name} fused L1 reduction",
            1.0 - dma_fused.core_l1_accesses / fused_l1,
            pub["fused"]["l1"],
            unit="frac",
        )
        exp.add(
            f"{name} fused L2 reduction",
            1.0 - dma_fused.core_l2_accesses / fused_l2,
            pub["fused"]["l2"],
            unit="frac",
        )
    return exp


def sec732_memory_system(scale: float = HARDWARE_SCALE) -> Experiment:
    """Section 7.3.2: L2 miss rate and stall-time changes with DMA."""
    exp = Experiment("sec732", "Memory-system improvement from the DMA engine")
    from ..kernels.base import UpdateParams

    f_in = HARDWARE_FEATURES
    for name in ("products", "wikipedia"):
        graph = _hardware_setup(name, scale)
        h = np.zeros((graph.num_vertices, f_in), dtype=np.float32)
        params = UpdateParams(
            weight=np.zeros((f_in, f_in), dtype=np.float32),
            bias=np.zeros(f_in, dtype=np.float32),
        )
        pub = paper.SEC732_MEMORY_SYSTEM[name]
        fused = CoreAggregationSim(cache_scale=HARDWARE_CACHE_SCALE).run(
            graph, f_in, fused_update_features=f_in
        )
        runner = DmaOffloadRunner(cache_scale=HARDWARE_CACHE_SCALE)
        _, _, dma = runner.run_layer(graph, h, params=params)
        exp.add(f"{name} L2 miss before", fused.l2_miss_rate, pub["l2_miss_before"], "frac")
        exp.add(f"{name} L2 miss after", dma.l2_miss_rate, pub["l2_miss_after"], "frac")
        exp.add(
            f"{name} stall before",
            fused.memory_stall_fraction,
            pub["stall_before"],
            "frac",
        )
        exp.add(
            f"{name} stall after", dma.core_wait_fraction, pub["stall_after"], "frac"
        )
    return exp
