"""Figure 2: sampled GraphSAGE training on a GPU — epoch breakdown.

Regenerates the motivation experiment: the CPU-side sampler runs for
real on the products twin; sampling should dominate the epoch and epoch
time should shrink as mini-batches grow.
"""

from conftest import run_experiment

from repro.bench.figures import fig2_gpu_sampling


def test_fig2_gpu_sampling(benchmark, ctx):
    exp = run_experiment(benchmark, fig2_gpu_sampling, ctx)
    shares = [r.measured for r in exp.rows if "share" in r.label]
    assert all(s > 0.5 for s in shares)
    assert exp.shape_holds(
        [
            "batch-4096 epoch time (norm.)",
            "batch-2048 epoch time (norm.)",
            "batch-1024 epoch time (norm.)",
        ]
    )
