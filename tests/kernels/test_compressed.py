"""Unit tests for the compression-aware kernels (Section 4.3)."""

import numpy as np
import pytest

from repro.graphs import synthetic_features
from repro.kernels import CompressedFusedKernel, CompressedKernel, UpdateParams
from repro.tensors import traffic_saved


class TestSavingsAccounting:
    def test_savings_grow_with_sparsity(self, small_products):
        kernel = CompressedKernel()
        savings = []
        for target in (0.1, 0.5, 0.9):
            h = synthetic_features(small_products, 32, seed=0, sparsity=target)
            _, stats = kernel.aggregate(small_products, h)
            savings.append(stats.dram_bytes_saved)
        assert savings[0] < savings[1] < savings[2]

    def test_dense_input_costs_traffic(self, small_products):
        """Below break-even sparsity the mask overhead makes traffic worse."""
        kernel = CompressedKernel()
        h = synthetic_features(small_products, 32, seed=0, sparsity=0.0)
        _, stats = kernel.aggregate(small_products, h)
        assert stats.dram_bytes_saved < 0
        assert traffic_saved(0.0) < 0  # consistent with the analytic model

    def test_savings_match_analytic_scale(self, small_products):
        """Measured savings track the (1 - s) - 1/32 law."""
        kernel = CompressedKernel()
        sparsity = 0.5
        h = synthetic_features(small_products, 64, seed=1, sparsity=sparsity)
        _, stats = kernel.aggregate(small_products, h)
        gathers = small_products.num_edges + small_products.num_vertices
        dense_bytes = gathers * 64 * 4
        measured_fraction = stats.dram_bytes_saved / dense_bytes
        assert measured_fraction == pytest.approx(
            traffic_saved(sparsity), abs=0.04
        )

    def test_expansion_counts(self, small_products):
        kernel = CompressedKernel()
        h = synthetic_features(small_products, 16, seed=2, sparsity=0.5)
        _, stats = kernel.aggregate(small_products, h)
        assert stats.decompressed_rows == (
            small_products.num_edges + small_products.num_vertices
        )
        assert stats.compressed_rows == small_products.num_vertices


class TestCombinedKernel:
    def test_savings_plus_buffer_reuse(self, small_products):
        kernel = CompressedFusedKernel(block_size=16)
        h = synthetic_features(small_products, 32, seed=3, sparsity=0.6)
        params = UpdateParams(
            weight=np.zeros((32, 8), dtype=np.float32),
            bias=np.zeros(8, dtype=np.float32),
        )
        _, a, stats = kernel.run_layer(small_products, h, params, keep_aggregation=False)
        assert a is None
        assert stats.peak_buffer_bytes == 16 * 32 * 4
        assert stats.dram_bytes_saved > 0
