"""Integration: bottleneck attribution reconciles model vs cache sim.

One seeded synthetic run exercises the full attribution loop the ISSUE
describes: traced kernel invocations (basic / fused / compressed), the
trace-driven cache simulator publishing ``sim.<label>.*`` traffic, and
``attribute_run`` joining the two planes.  In the compulsory-dominated
regime (the whole working set fits in L2/L3) the cost model and the
simulator count the same DRAM bytes up to line-granularity rounding, so
their per-pass aggregation traffic must agree within
``DEFAULT_TRAFFIC_TOLERANCE`` — and the fused kernel's attributed
aggregation traffic must sit strictly below basic's (the Section 4.2
claim that fusion removes the ``a`` round trip).
"""

import numpy as np
import pytest

from repro import obs
from repro.graphs import power_law_graph, synthetic_features
from repro.kernels import (
    BasicKernel,
    CompressedKernel,
    FusedKernel,
    UpdateParams,
)
from repro.obs.attrib import DEFAULT_TRAFFIC_TOLERANCE, attribute_run
from repro.perf import CostModel, cascade_lake_12
from repro.perf.attribution import compressed_effective_feature_len
from repro.sim import CoreAggregationSim
from repro.tensors.compression import traffic_ratio

SEED = 7
FEATURES = 16
HIDDEN = 8
SPARSITY = 0.5


@pytest.fixture(scope="module")
def traced_run():
    """One traced run of the three kernels plus their simulator twins."""
    graph = power_law_graph(600, 8.0, seed=SEED, name="attrib-twin")
    h = synthetic_features(graph, FEATURES, seed=SEED, sparsity=SPARSITY)
    rng = np.random.default_rng(SEED)
    params = UpdateParams(
        weight=(rng.standard_normal((FEATURES, HIDDEN)) * 0.1).astype(np.float32),
        bias=np.zeros(HIDDEN, dtype=np.float32),
    )
    machine = cascade_lake_12()
    sim = CoreAggregationSim(machine)

    tracer, metrics = obs.enable()
    try:
        BasicKernel().aggregate(graph, h)
        FusedKernel().run_layer(graph, h, params, keep_aggregation=False)
        CompressedKernel().aggregate(graph, h)

        # Simulator twins of the same passes.  The whole working set fits
        # in the private caches, so DRAM traffic is compulsory-dominated
        # on both planes.
        sim.run(graph, FEATURES, label="basic")
        sim.run(
            graph,
            FEATURES,
            fused_update_features=HIDDEN,
            reuse_output_buffer=True,
            label="fusion",
        )
        eff = compressed_effective_feature_len(FEATURES, traffic_ratio(SPARSITY))
        sim.run(graph, eff, label="compression")

        records = [
            span.to_record()
            for span in sorted(tracer.spans(), key=lambda s: s.span_id)
        ]
        snapshot = metrics.snapshot()
    finally:
        obs.disable()

    # Huge capacity -> the model's gather hit rate is the compulsory
    # bound (every repeat access hits), matching the fits-in-cache sim.
    cost_model = CostModel(graph, machine, capacity_vectors=10**9)
    report = attribute_run(
        records,
        cost_model=cost_model,
        sparsity=SPARSITY,
        metrics_snapshot=snapshot,
    )
    return report, records, snapshot


class TestReconciliation:
    def test_all_three_variants_reconcile(self, traced_run):
        report, _, _ = traced_run
        by_variant = {rec.variant: rec for rec in report.reconciliations}
        assert set(by_variant) == {"basic", "fusion", "compression"}
        for variant, rec in by_variant.items():
            assert rec.within_tolerance, (
                f"{variant}: model {rec.model_bytes:.0f} B vs sim "
                f"{rec.sim_bytes:.0f} B ({rec.relative_error:.1%} apart)"
            )
            assert rec.relative_error <= DEFAULT_TRAFFIC_TOLERANCE
        assert report.divergent() == []

    def test_fused_aggregation_traffic_below_basic(self, traced_run):
        """Section 4.2: fusion removes the ``a`` write from the agg phase."""
        report, _, _ = traced_run
        basic = report.span_for("kernel.basic")[0]
        fused = report.span_for("kernel.fusion")[0]
        assert fused.aggregation_dram_bytes < basic.aggregation_dram_bytes

    def test_fused_sim_traffic_below_basic_sim(self, traced_run):
        """The simulator agrees: the reusable output buffer cuts traffic."""
        _, _, snapshot = traced_run
        basic = snapshot["sim.basic.dram.bytes_served"]["value"]
        fused = snapshot["sim.fusion.dram.bytes_served"]["value"]
        assert fused < basic

    def test_basic_span_is_memory_bound(self, traced_run):
        report, _, _ = traced_run
        basic = report.span_for("kernel.basic")[0]
        assert basic.verdict == "memory-bound"
        assert basic.memory_bound_fraction > 0.5

    def test_compression_moves_fewer_model_bytes_than_basic(self, traced_run):
        report, _, _ = traced_run
        basic = report.span_for("kernel.basic")[0]
        compressed = report.span_for("kernel.compression")[0]
        assert compressed.aggregation_dram_bytes < basic.aggregation_dram_bytes
        assert compressed.measured["dram_bytes_saved"] > 0

    def test_injected_divergence_is_flagged(self, traced_run):
        _, records, _ = traced_run
        report = attribute_run(
            records,
            hit_rate=0.9,
            sparsity=SPARSITY,
            sim_dram_bytes={"basic": 1e12},
        )
        assert "basic" in [r.variant for r in report.divergent()]

    def test_sim_spans_recorded_but_not_attributed(self, traced_run):
        report, records, _ = traced_run
        sim_spans = [r for r in records if r["name"].startswith("sim.")]
        assert len(sim_spans) == 3
        assert all(s["counters"]["dram_bytes"] > 0 for s in sim_spans)
        attributed = {s.name for s in report.spans}
        assert not any(name.startswith("sim.") for name in attributed)

    def test_report_round_trips_to_json(self, traced_run, tmp_path):
        report, _, _ = traced_run
        path = tmp_path / "attribution.json"
        report.write_json(str(path))
        import json

        doc = json.loads(path.read_text())
        assert {r["variant"] for r in doc["reconciliations"]} == {
            "basic",
            "fusion",
            "compression",
        }
        assert doc["divergent"] == []
