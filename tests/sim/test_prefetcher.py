"""Unit tests for the hardware stream prefetcher model."""

import numpy as np
import pytest

from repro.graphs import load_dataset
from repro.sim.prefetcher import StreamPrefetcher, gather_trace_coverage
from repro.sim.trace import layout_for, vertex_trace


def sequential_trace(lines: int, start: int = 0):
    return [(start + i) * 64 for i in range(lines)]


class TestTraining:
    def test_sequential_stream_gets_covered(self):
        prefetcher = StreamPrefetcher(degree=4, train_threshold=2)
        stats = prefetcher.run_trace(sequential_trace(200))
        assert stats.coverage > 0.8
        assert stats.accuracy > 0.8

    def test_random_trace_trains_poorly(self):
        rng = np.random.default_rng(0)
        trace = (rng.integers(0, 10_000, size=500) * 64).tolist()
        stats = StreamPrefetcher().run_trace(trace)
        assert stats.coverage < 0.1

    def test_needs_threshold_consecutive_steps(self):
        prefetcher = StreamPrefetcher(degree=2, train_threshold=3)
        prefetcher.run_trace(sequential_trace(2))
        assert prefetcher.stats.streams_confirmed == 0
        prefetcher.run_trace(sequential_trace(3, start=100))
        assert prefetcher.stats.streams_confirmed >= 1

    def test_same_line_bytes_do_not_advance_stream(self):
        prefetcher = StreamPrefetcher(train_threshold=2)
        prefetcher.run_trace([0, 8, 16])  # all in line 0
        assert prefetcher.stats.streams_confirmed == 0

    def test_multiple_interleaved_streams(self):
        a = sequential_trace(50, start=0)
        b = sequential_trace(50, start=100_000)
        interleaved = [line for pair in zip(a, b) for line in pair]
        stats = StreamPrefetcher(table_entries=8).run_trace(interleaved)
        assert stats.coverage > 0.6

    def test_reset(self):
        prefetcher = StreamPrefetcher()
        prefetcher.run_trace(sequential_trace(50))
        prefetcher.reset()
        assert prefetcher.stats.accesses == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StreamPrefetcher(degree=0)
        with pytest.raises(ValueError):
            StreamPrefetcher(train_threshold=0)


class TestGatherDefeatsPrefetching:
    def test_aggregation_trace_poorly_covered(self):
        """The §4.1 argument: gathers jump between short vector bursts, so
        stream prefetchers cover little of the aggregation traffic."""
        graph = load_dataset("products", scale=0.05, seed=0)
        layout = layout_for(graph, 32)  # 2 lines per feature vector
        trace = []
        for v in range(graph.num_vertices):
            trace.extend(vertex_trace(graph, layout, v).gather_lines)
        stats = gather_trace_coverage(trace)
        assert stats.coverage < 0.45

    def test_wide_vectors_train_better(self):
        """Longer per-vector bursts (more lines per row) give streams a
        chance — the flip side of the same argument."""
        graph = load_dataset("products", scale=0.05, seed=0)
        narrow = layout_for(graph, 32)  # 2 lines
        wide = layout_for(graph, 256)  # 16 lines
        def coverage(layout):
            trace = []
            for v in range(0, graph.num_vertices, 2):
                trace.extend(vertex_trace(graph, layout, v).gather_lines)
            return gather_trace_coverage(trace).coverage
        assert coverage(wide) > coverage(narrow)
