"""Unit tests for the mesh NoC model."""

import pytest

from repro.sim.noc import MeshNoc


class TestGeometry:
    def test_width_covers_cores(self):
        noc = MeshNoc(cores=28)
        assert noc.width ** 2 >= 28

    def test_coordinates_round_trip(self):
        noc = MeshNoc(cores=16)
        seen = {noc.coordinates(n) for n in range(16)}
        assert len(seen) == 16

    def test_out_of_range_node(self):
        with pytest.raises(IndexError):
            MeshNoc(cores=4).coordinates(4)


class TestLatency:
    def test_self_distance_zero_hops(self):
        noc = MeshNoc()
        assert noc.hops(5, 5) == 0
        assert noc.latency(5, 5) == noc.base_cycles

    def test_manhattan_distance(self):
        noc = MeshNoc(cores=16)  # 4x4
        assert noc.hops(0, 5) == 2  # (0,0) -> (1,1)
        assert noc.hops(0, 15) == 6  # (0,0) -> (3,3)

    def test_symmetric(self):
        noc = MeshNoc(cores=16)
        for a, b in ((0, 7), (3, 12), (1, 14)):
            assert noc.hops(a, b) == noc.hops(b, a)

    def test_latency_grows_with_hops(self):
        noc = MeshNoc(cores=16)
        assert noc.latency(0, 15) > noc.latency(0, 1)

    def test_triangle_inequality(self):
        noc = MeshNoc(cores=16)
        assert noc.hops(0, 15) <= noc.hops(0, 5) + noc.hops(5, 15)


class TestHomeSlices:
    def test_home_slice_in_range(self):
        noc = MeshNoc(cores=28)
        for addr in (0, 64, 4096, 123456 * 64):
            assert 0 <= noc.home_slice(addr) < 28

    def test_adjacent_lines_interleave(self):
        noc = MeshNoc(cores=28)
        homes = {noc.home_slice(line * 64) for line in range(28)}
        assert len(homes) == 28  # lines stripe across all slices

    def test_l3_round_trip(self):
        noc = MeshNoc(cores=28)
        assert noc.l3_access_latency(0, 0) == 2 * noc.latency(0, 0)


class TestAverages:
    def test_average_latency_bounded(self):
        noc = MeshNoc(cores=16)
        assert noc.base_cycles <= noc.average_latency() <= noc.latency(0, 15)

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshNoc(cores=0)
        with pytest.raises(ValueError):
            MeshNoc(hop_cycles=-1)
