"""Acceptance test for unified run telemetry.

Trains on a synthetic twin with tracing enabled and asserts the two
properties the observability layer promises:

1. the exported span tree nests epoch -> layer -> kernel -> worker, and
2. the counters aggregated from the trace exactly match the
   ``KernelStats`` the kernels returned to the trainer.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.graphs import power_law_graph, synthetic_features
from repro.kernels import BasicKernel
from repro.nn import Adam, Trainer, build_model
from repro.obs import read_trace, span_tree
from repro.parallel import ChunkExecutor

EPOCHS = 2
LAYERS = 2
WORKERS = 2


def _tiny_inputs(features=16, classes=4, seed=0):
    graph = power_law_graph(300, 6.0, seed=seed, name="tiny")
    h = synthetic_features(graph, features, seed=seed, sparsity=0.5)
    labels = np.random.default_rng(seed).integers(0, classes, graph.num_vertices)
    return graph, h, labels


@pytest.fixture
def traced_run():
    """One traced training run; returns (tracer, metrics, history)."""
    graph, h, labels = _tiny_inputs()
    model = build_model("gcn", h.shape[1], 16, 4, seed=0)
    kernel = BasicKernel(executor=ChunkExecutor("thread", WORKERS))
    trainer = Trainer(model, Adam(model, lr=0.01), aggregation_kernel=kernel)
    tracer, metrics = obs.enable()
    try:
        trainer.fit(graph, h, labels, epochs=EPOCHS)
    finally:
        obs.disable()
    return tracer, metrics, trainer.history


class TestSpanTreeShape:
    def test_nests_epoch_layer_kernel_worker(self, traced_run):
        tracer, _, _ = traced_run
        records = [s.to_record() for s in tracer.spans()]
        roots = span_tree(records)
        epochs = [r for r in roots if r["name"] == "epoch"]
        assert len(epochs) == EPOCHS
        for epoch in epochs:
            layers = [c for c in epoch["children"] if c["name"] == "layer"]
            assert len(layers) == LAYERS
            for layer in layers:
                kernels = [
                    c for c in layer["children"]
                    if c["name"].startswith("kernel.")
                ]
                assert len(kernels) == 1
                workers = [
                    c for c in kernels[0]["children"] if c["name"] == "worker"
                ]
                assert len(workers) == WORKERS

    def test_backward_is_epoch_child(self, traced_run):
        tracer, _, _ = traced_run
        records = [s.to_record() for s in tracer.spans()]
        for root in span_tree(records):
            names = [c["name"] for c in root["children"]]
            assert names.count("backward") == 1


class TestCounterConsistency:
    def test_trace_matches_returned_kernel_stats(self, traced_run):
        """The acceptance criterion: trace totals == KernelStats totals.

        ``kernel.*`` spans now cover both directions (forward aggregation
        and the batched backward), so the trace totals must equal the
        forward and backward stats the trainer accumulated, merged.
        """
        from repro.kernels import KernelStats

        tracer, _, history = traced_run
        merged = KernelStats()
        merged.merge(history.aggregation_stats)
        merged.merge(history.backward_stats)
        assert tracer.aggregate_counters("kernel.*") == merged.as_dict()

    def test_worker_counters_sum_to_kernel_counters(self, traced_run):
        tracer, _, _ = traced_run
        kernel_spans = tracer.spans("kernel.*")
        by_id = {s.span_id: s for s in kernel_spans}
        worker_totals = {span_id: 0.0 for span_id in by_id}
        for worker in tracer.spans("worker"):
            if worker.parent_id in worker_totals:
                worker_totals[worker.parent_id] += worker.counters["gathers"]
        for span_id, total in worker_totals.items():
            assert total == by_id[span_id].counters["gathers"]

    def test_metrics_registry_agrees_with_trace(self, traced_run):
        tracer, metrics, _ = traced_run
        snap = metrics.snapshot()
        totals = tracer.aggregate_counters("kernel.basic")
        assert snap["kernel.basic.gathers"]["value"] == totals["gathers"]
        # One executor run per aggregation: forward + backward per layer.
        assert snap["executor.runs"]["value"] == float(EPOCHS * LAYERS * 2)


class TestCliArtifacts:
    def test_train_trace_and_json(self, tmp_path, capsys):
        trace_path = tmp_path / "out.jsonl"
        json_path = tmp_path / "run.json"
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "2",
            "--features", "16", "--hidden", "16",
            "--workers", "2", "--backend", "thread",
            "--trace", str(trace_path), "--json", str(json_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "spans" in out

        header, records = read_trace(str(trace_path))
        assert header["schema"] == 1
        roots = span_tree(records)
        epoch = next(r for r in roots if r["name"] == "epoch")
        layer = next(c for c in epoch["children"] if c["name"] == "layer")
        kernel = next(
            c for c in layer["children"] if c["name"].startswith("kernel.")
        )
        assert any(c["name"] == "worker" for c in kernel["children"])

        report = json.loads(json_path.read_text())
        assert report["meta"]["command"] == "train"
        assert report["environment"]["repro_version"]
        assert len(report["spans"]) == len(records)
        # The report's counter totals join trace + metrics consistently.
        kernel_records = [
            r for r in records if r["name"].startswith("kernel.")
        ]
        gathers = sum(r["counters"]["gathers"] for r in kernel_records)
        # Forward and backward publish to separate metric namespaces.
        published = (
            report["metrics"]["kernel.basic.gathers"]["value"]
            + report["metrics"]["kernel.backward.basic.gathers"]["value"]
        )
        assert published == gathers

    def test_disabled_by_default(self):
        graph, h, labels = _tiny_inputs()
        model = build_model("gcn", h.shape[1], 16, 4, seed=0)
        kernel = BasicKernel(executor=ChunkExecutor("thread", 2))
        trainer = Trainer(model, Adam(model, lr=0.01), aggregation_kernel=kernel)
        trainer.fit(graph, h, labels, epochs=1)
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().snapshot() == {}
