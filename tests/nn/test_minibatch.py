"""Unit tests for mini-batch (sampled) training and block assembly."""

import numpy as np
import pytest

from repro.gpu import sample_blocks
from repro.graphs import planted_partition_graph
from repro.nn import Adam, build_model
from repro.nn.minibatch import (
    MiniBatchTrainer,
    assemble_batch,
    block_aggregate,
    block_forward,
    full_neighbor_blocks,
)


@pytest.fixture(scope="module")
def task():
    graph, labels = planted_partition_graph(160, 3, p_in=0.12, p_out=0.01, seed=7)
    rng = np.random.default_rng(7)
    features = rng.standard_normal((160, 8)).astype(np.float32)
    features[:, 0] += labels.astype(np.float32)
    return graph, features, labels


class TestBlockAggregate:
    def test_mean_of_sampled_neighbors(self):
        edge_dst = np.array([5, 5, 9])
        edge_src = np.array([1, 3, 3])
        dst = np.array([5, 9])
        h_src = np.array([[2.0], [4.0]], dtype=np.float32)  # rows for 1, 3
        src_index = {1: 0, 3: 1}
        out = block_aggregate(edge_dst, edge_src, dst, h_src, src_index)
        np.testing.assert_allclose(out[0], 3.0)  # mean(2, 4)
        np.testing.assert_allclose(out[1], 4.0)

    def test_isolated_destination_zero(self):
        out = block_aggregate(
            np.array([]), np.array([]), np.array([7]),
            np.zeros((0, 2), np.float32), {},
        )
        np.testing.assert_array_equal(out, 0.0)


class TestFullNeighborBlocks:
    def test_empty_frontier_yields_empty_blocks(self, tiny_graph):
        batch = full_neighbor_blocks(tiny_graph, np.array([], dtype=np.int64), 2)
        assert len(batch.blocks) == 2
        for block in batch.blocks:
            assert block.dst_vertices.size == 0
            assert block.edge_dst.size == 0
        assert batch.seed_vertices.size == 0

    def test_isolated_vertex_gets_only_its_self_edge(self, tiny_graph):
        # vertex 4 has no in-edges; the block must still carry its self
        # edge so the forward produces a defined (not garbage) row
        batch = full_neighbor_blocks(tiny_graph, np.array([4]), 1)
        block = batch.blocks[0]
        np.testing.assert_array_equal(block.dst_vertices, [4])
        np.testing.assert_array_equal(block.edge_dst, [4])
        np.testing.assert_array_equal(block.edge_src, [4])

    def test_two_hop_frontier_expands(self, tiny_graph):
        # seeds {0}: 1-hop N(0) = {1, 2}; input block covers 2 hops
        batch = full_neighbor_blocks(tiny_graph, np.array([0]), 2)
        np.testing.assert_array_equal(batch.blocks[-1].dst_vertices, [0])
        np.testing.assert_array_equal(batch.blocks[-1].src_vertices, [0, 1, 2])
        np.testing.assert_array_equal(
            batch.blocks[0].dst_vertices, [0, 1, 2]
        )
        assert 3 in batch.blocks[0].src_vertices  # 2's neighbor

    def test_num_layers_validated(self, tiny_graph):
        with pytest.raises(ValueError):
            full_neighbor_blocks(tiny_graph, np.array([0]), 0)

    def test_assemble_batch_routes_fanouts(self, tiny_graph):
        sampled = assemble_batch(
            tiny_graph, np.array([3]), 2, fanouts=(2, 2),
            rng=np.random.default_rng(0),
        )
        assert len(sampled.blocks) == 2
        with pytest.raises(ValueError):
            assemble_batch(tiny_graph, np.array([3]), 2, fanouts=(2,))


class TestBlockForward:
    @pytest.mark.parametrize("model_type", ["gcn", "sage"])
    def test_exact_assembly_matches_full_graph_predict(
        self, tiny_graph, model_type
    ):
        rng = np.random.default_rng(3)
        features = rng.standard_normal((5, 6)).astype(np.float32)
        model = build_model(model_type, 6, 4, 3, num_layers=2, seed=2)
        oracle = model.predict(tiny_graph, features)
        batch = assemble_batch(tiny_graph, np.arange(5), 2)
        result = block_forward(tiny_graph, model, batch, features)
        np.testing.assert_allclose(result.logits, oracle, atol=1e-4)

    def test_repeated_query_vertices_dedup_to_unique_rows(self, tiny_graph):
        rng = np.random.default_rng(4)
        features = rng.standard_normal((5, 6)).astype(np.float32)
        model = build_model("gcn", 6, 4, 3, num_layers=2, seed=0)
        requested = np.array([3, 0, 3, 3])
        batch = assemble_batch(tiny_graph, requested, 2)
        result = block_forward(tiny_graph, model, batch, features)
        np.testing.assert_array_equal(result.query_vertices, [0, 3])
        assert result.logits.shape[0] == 2
        # positional mapping recovers each requested row
        rows = np.searchsorted(result.query_vertices, requested)
        np.testing.assert_array_equal(rows, [1, 0, 1, 1])

    def test_isolated_vertex_logits_match_predict(self, tiny_graph):
        rng = np.random.default_rng(5)
        features = rng.standard_normal((5, 6)).astype(np.float32)
        model = build_model("gcn", 6, 4, 3, num_layers=2, seed=1)
        oracle = model.predict(tiny_graph, features)
        batch = assemble_batch(tiny_graph, np.array([4]), 2)
        result = block_forward(tiny_graph, model, batch, features)
        np.testing.assert_allclose(result.logits[0], oracle[4], atol=1e-4)

    def test_empty_batch_forward(self, tiny_graph):
        rng = np.random.default_rng(6)
        features = rng.standard_normal((5, 6)).astype(np.float32)
        model = build_model("gcn", 6, 4, 3, num_layers=2, seed=1)
        batch = assemble_batch(tiny_graph, np.array([], dtype=np.int64), 2)
        result = block_forward(tiny_graph, model, batch, features)
        assert result.logits.shape == (0, 3)
        assert result.embeddings.shape[0] == 0

    def test_embeddings_are_last_layer_input(self, tiny_graph):
        rng = np.random.default_rng(7)
        features = rng.standard_normal((5, 6)).astype(np.float32)
        model = build_model("gcn", 6, 4, 3, num_layers=2, seed=1)
        batch = assemble_batch(tiny_graph, np.array([1, 2]), 2)
        result = block_forward(tiny_graph, model, batch, features)
        assert result.embeddings.shape == (2, 4)  # hidden width

    def test_block_count_must_match_model_depth(self, tiny_graph):
        rng = np.random.default_rng(8)
        features = rng.standard_normal((5, 6)).astype(np.float32)
        model = build_model("gcn", 6, 4, 3, num_layers=2, seed=1)
        batch = assemble_batch(tiny_graph, np.array([0]), 1)
        with pytest.raises(ValueError):
            block_forward(tiny_graph, model, batch, features)


class TestMiniBatchTrainer:
    def test_requires_mean_aggregator(self, task):
        model = build_model("gcn", 8, 16, 3, num_layers=2)
        with pytest.raises(ValueError):
            MiniBatchTrainer(model, Adam(model, lr=0.01))

    def test_forward_shapes(self, task):
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=0)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.01))
        rng = np.random.default_rng(0)
        batch = sample_blocks(graph, np.arange(12), (5, 5), rng)
        logits, caches = trainer.forward_batch(batch, features)
        assert logits.shape == (len(batch.blocks[-1].dst_vertices), 3)
        assert len(caches) == 2

    def test_epoch_loss_decreases(self, task):
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=1)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.02))
        first = trainer.fit_epoch(graph, features, labels, 32, (5, 5), seed=0)
        for epoch in range(4):
            last = trainer.fit_epoch(
                graph, features, labels, 32, (5, 5), seed=epoch + 1
            )
        assert last < first

    def test_fanout_count_checked(self, task):
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=2)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.01))
        with pytest.raises(ValueError):
            trainer.fit_epoch(graph, features, labels, 32, (5,))

    def test_steps_recorded(self, task):
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=3)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.01))
        trainer.fit_epoch(graph, features, labels, 64, (4, 4), seed=0)
        assert len(trainer.steps) == (graph.num_vertices + 63) // 64
        assert all(s.sampled_edges > 0 for s in trainer.steps)

    def test_weights_usable_full_batch_afterwards(self, task):
        """Sampled-trained parameters plug straight into full-batch
        inference — the workflows share the model object."""
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=4)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.02))
        for epoch in range(3):
            trainer.fit_epoch(graph, features, labels, 32, (5, 5), seed=epoch)
        logits = model.predict(graph, features)
        accuracy = float((logits.argmax(axis=1) == labels).mean())
        assert accuracy > 0.4  # chance is ~0.33
