"""Tests for the perf-regression history and comparison gate."""

import json

import pytest

from repro.obs.history import (
    DEFAULT_THRESHOLD,
    HistoryEntry,
    append_history,
    baseline_medians,
    compare_entries,
    default_higher_is_better,
    entry_from_bench_results,
    entry_from_run_report,
    load_history,
)


def entry(elapsed, label="bench", ts=1000.0, **extra):
    metrics = {"elapsed_s": elapsed}
    metrics.update(extra)
    return HistoryEntry(label=label, timestamp=ts, metrics=metrics)


BENCH_DOC = {
    "schema": 1,
    "generated_unix": 1700000000.0,
    "elapsed_s": 12.5,
    "scale": 0.5,
    "environment": {"git_sha": "abc123"},
    "experiments": [
        {"key": "fig3", "max_paper_deviation": 0.08},
        {"key": "tab3", "max_paper_deviation": 0.02},
        {"key": "nopaper", "max_paper_deviation": None},
    ],
    "summary": {
        "experiments": 3,
        "rows": 20,
        "rows_with_paper": 15,
        "max_paper_deviation": 0.08,
    },
}


class TestEntries:
    def test_entry_from_bench_results(self):
        e = entry_from_bench_results(BENCH_DOC, label="quick")
        assert e.label == "quick"
        assert e.timestamp == 1700000000.0
        assert e.metrics["elapsed_s"] == 12.5
        assert e.metrics["max_paper_deviation"] == 0.08
        assert e.metrics["deviation.fig3"] == 0.08
        assert e.metrics["deviation.tab3"] == 0.02
        assert "deviation.nopaper" not in e.metrics
        assert e.meta["git_sha"] == "abc123"

    def test_entry_from_run_report_sums_span_durations(self):
        report = {
            "trace_epoch_unix": 1700000001.0,
            "meta": {"command": "train"},
            "spans": [
                {"name": "kernel.basic", "duration_s": 0.004},
                {"name": "kernel.basic", "duration_s": 0.006},
                {"name": "epoch", "duration_s": 0.020},
            ],
        }
        e = entry_from_run_report(report)
        assert e.metrics["span.kernel.basic.total_s"] == pytest.approx(0.010)
        assert e.metrics["span.epoch.total_s"] == pytest.approx(0.020)
        assert e.meta["command"] == "train"

    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        append_history(path, entry(1.0, ts=1.0))
        append_history(path, entry(2.0, label="other", ts=2.0))
        append_history(path, entry(3.0, ts=3.0))
        assert [e.metrics["elapsed_s"] for e in load_history(path)] == [1, 2, 3]
        assert [e.label for e in load_history(path, label="bench")] == [
            "bench",
            "bench",
        ]
        assert load_history(str(tmp_path / "missing.jsonl")) == []


class TestCompare:
    def test_identical_rerun_passes(self):
        baseline = [entry(10.0) for _ in range(5)]
        report = compare_entries(baseline, entry(10.0))
        assert report.ok
        assert all(c.status == "ok" for c in report.comparisons)

    def test_twenty_percent_slowdown_fails(self):
        baseline = [entry(10.0) for _ in range(5)]
        report = compare_entries(baseline, entry(12.0))
        assert not report.ok
        assert report.regressions[0].name == "elapsed_s"
        assert report.regressions[0].ratio == pytest.approx(1.2)

    def test_median_absorbs_one_noisy_baseline_run(self):
        baseline = [entry(10.0), entry(10.0), entry(50.0), entry(10.0), entry(10.0)]
        report = compare_entries(baseline, entry(11.0))
        assert report.ok  # median is 10, not dragged up by the 50

    def test_baseline_window_is_most_recent_k(self):
        entries = [entry(100.0)] + [entry(10.0) for _ in range(5)]
        medians = baseline_medians(entries, baseline_runs=5)
        assert medians["elapsed_s"] == 10.0

    def test_higher_is_better_flips_direction(self):
        baseline = [entry(10.0, throughput=100.0) for _ in range(3)]
        report = compare_entries(
            baseline,
            entry(10.0, throughput=70.0),
            higher_is_better=["throughput"],
        )
        assert [c.name for c in report.regressions] == ["throughput"]

    def test_new_metric_never_gates(self):
        baseline = [entry(10.0)]
        report = compare_entries(baseline, entry(10.0, brand_new=99.0))
        new = [c for c in report.comparisons if c.status == "new"]
        assert [c.name for c in new] == ["brand_new"]
        assert report.ok

    def test_zero_baseline_skipped(self):
        baseline = [entry(10.0, deviation=0.0)]
        report = compare_entries(baseline, entry(10.0, deviation=0.5))
        skipped = [c for c in report.comparisons if c.status == "skipped"]
        assert [c.name for c in skipped] == ["deviation"]

    def test_throughput_suffixes_default_to_higher_is_better(self):
        names = [
            "span.kernel.basic.total_s",
            "fused.speedup_x",
            "sharded.shards4.epochs_per_s",
            "sharded.shards4.efficiency",
        ]
        assert default_higher_is_better(names) == {
            "fused.speedup_x",
            "sharded.shards4.epochs_per_s",
            "sharded.shards4.efficiency",
        }

    def test_throughput_drop_gates_as_regression(self):
        """A sharded-bench rate falling 30% must trip the gate even
        though the raw number went *down* — the suffix flips direction."""
        baseline = [
            entry(10.0, **{"sharded.shards4.epochs_per_s": 100.0})
            for _ in range(3)
        ]
        current = entry(10.0, **{"sharded.shards4.epochs_per_s": 70.0})
        report = compare_entries(
            baseline,
            current,
            higher_is_better=default_higher_is_better(current.metrics),
        )
        assert [c.name for c in report.regressions] == [
            "sharded.shards4.epochs_per_s"
        ]
        assert not report.ok

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_entries([entry(1.0)], entry(1.0), threshold=-0.1)

    def test_render_mentions_verdict(self):
        baseline = [entry(10.0)]
        ok = compare_entries(baseline, entry(10.0)).render()
        bad = compare_entries(baseline, entry(20.0)).render()
        assert "OK" in ok and "REGRESSED" in bad
        assert f"{DEFAULT_THRESHOLD:.0%}" in ok


class TestCompareCli:
    def run_cli(self, argv):
        from repro.cli import main

        return main(argv)

    def write_history(self, path, values, label="bench"):
        for i, value in enumerate(values):
            append_history(str(path), entry(value, label=label, ts=float(i)))

    def test_exit_zero_on_identical_rerun(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        self.write_history(path, [10.0, 10.0, 10.0, 10.0])
        assert self.run_cli(["compare", "--history", str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_nonzero_on_injected_slowdown(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        self.write_history(path, [10.0, 10.0, 10.0, 12.0])
        assert self.run_cli(["compare", "--history", str(path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_trivial_pass_without_baseline(self, tmp_path, capsys):
        path = tmp_path / "h.jsonl"
        self.write_history(path, [10.0])
        assert self.run_cli(["compare", "--history", str(path)]) == 0
        assert "trivially" in capsys.readouterr().out

    def test_current_bench_doc_against_history(self, tmp_path):
        path = tmp_path / "h.jsonl"
        for i in range(3):
            append_history(
                str(path),
                entry_from_bench_results(BENCH_DOC, label="bench"),
            )
        current = dict(BENCH_DOC, elapsed_s=30.0)
        current_path = tmp_path / "BENCH_results.json"
        current_path.write_text(json.dumps(current))
        code = self.run_cli(
            [
                "compare",
                "--history",
                str(path),
                "--current",
                str(current_path),
            ]
        )
        assert code == 1  # 30s vs 12.5s baseline

    def test_label_filter(self, tmp_path):
        path = tmp_path / "h.jsonl"
        self.write_history(path, [10.0, 10.0], label="quick")
        self.write_history(path, [99.0], label="full")
        assert (
            self.run_cli(
                ["compare", "--history", str(path), "--label", "quick"]
            )
            == 0
        )

    def test_unrecognized_current_doc(self, tmp_path, capsys):
        bogus = tmp_path / "x.json"
        bogus.write_text("{}")
        code = self.run_cli(
            ["compare", "--history", str(tmp_path / "h.jsonl"), "--current", str(bogus)]
        )
        assert code == 2


class TestServingDirections:
    def test_qps_suffixes_flip_to_higher_is_better(self):
        names = [
            "serve.qps",
            "loadgen.requests_per_s",
            "serve.latency_p99_s",
            "elapsed_s",
        ]
        flipped = default_higher_is_better(names)
        assert flipped == {"serve.qps", "loadgen.requests_per_s"}

    def test_qps_drop_regresses_latency_rise_regresses(self):
        baseline = [
            entry(1.0, **{"serve.qps": 1000.0, "serve.latency_p99_s": 0.01})
            for _ in range(3)
        ]
        slower = entry(
            1.0, **{"serve.qps": 500.0, "serve.latency_p99_s": 0.05}
        )
        report = compare_entries(
            baseline,
            slower,
            higher_is_better=default_higher_is_better(slower.metrics),
        )
        regressed = {c.name for c in report.regressions}
        assert "serve.qps" in regressed
        assert "serve.latency_p99_s" in regressed

    def test_skipped_zero_baseline_renders_without_crash(self):
        """A ~zero baseline yields ratio=None ('skipped'); render() must
        format it instead of raising on the None ratio."""
        baseline = [entry(1.0, **{"serve.error_fraction": 0.0})]
        current = entry(1.0, **{"serve.error_fraction": 0.0})
        report = compare_entries(baseline, current)
        text = report.render()
        assert "serve.error_fraction" in text
        assert "skipped" in text
        assert report.ok
