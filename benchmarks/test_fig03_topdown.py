"""Figure 3: pipeline-slot breakdown of the baseline full-batch training."""

from conftest import run_experiment

from repro.bench.figures import fig3_topdown


def test_fig3_topdown(benchmark, ctx):
    exp = run_experiment(benchmark, fig3_topdown, ctx)
    values = {r.label: r.measured for r in exp.rows}
    assert values["retiring"] < 0.2
    assert values["memory bound"] > 0.5
