"""Table 4: memory-performance characterization of GCN training."""

from conftest import run_experiment

from repro.bench.figures import tab4_characterization


def test_tab4_characterization(benchmark, ctx):
    exp = run_experiment(benchmark, tab4_characterization, ctx)
    values = {r.label: r.measured for r in exp.rows}
    for name in ("products", "wikipedia", "papers", "twitter"):
        # Optimizations raise retiring and relieve the memory bound.
        assert (
            values[f"{name} c-locality retiring"]
            >= values[f"{name} distgnn retiring"]
        )
        assert (
            values[f"{name} combined memory-bound"]
            <= values[f"{name} distgnn memory-bound"] + 0.02
        )
        # Baselines peg the L1 fill buffers (Section 3).
        assert values[f"{name} distgnn fill-buffer-full"] == 1.0
