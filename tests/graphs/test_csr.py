"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import CSRGraph, GraphError


class TestConstruction:
    def test_from_edges_basic(self, tiny_graph):
        assert tiny_graph.num_vertices == 5
        assert tiny_graph.num_edges == 7

    def test_neighbors_sorted_per_row(self, tiny_graph):
        assert list(tiny_graph.neighbors(3)) == [0, 1, 2]
        assert list(tiny_graph.neighbors(0)) == [1, 2]

    def test_isolated_vertex_has_no_neighbors(self, tiny_graph):
        assert len(tiny_graph.neighbors(4)) == 0

    def test_degrees(self, tiny_graph):
        assert list(tiny_graph.degrees()) == [2, 1, 1, 3, 0]
        assert tiny_graph.degree(3) == 3

    def test_empty_graph(self):
        graph = CSRGraph.from_edges(0, [])
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_vertices_without_edges(self):
        graph = CSRGraph.from_edges(4, [(0, 1)])
        assert graph.num_vertices == 4
        assert graph.num_edges == 1

    def test_deduplication(self):
        graph = CSRGraph.from_edges(3, [(0, 1), (0, 1), (0, 2)])
        assert graph.num_edges == 2

    def test_deduplication_disabled(self):
        graph = CSRGraph.from_edges(3, [(0, 1), (0, 1)], deduplicate=False)
        assert graph.num_edges == 2

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, [(0, 3)])
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, [(-1, 0)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(-1, [])


class TestValidation:
    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_monotonic(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_indptr_tail_matches_indices(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_indices_in_range(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]))


class TestDerived:
    def test_with_self_loops_adds_one_per_vertex(self, tiny_graph):
        looped = tiny_graph.with_self_loops()
        assert looped.num_edges == tiny_graph.num_edges + tiny_graph.num_vertices
        for v in range(looped.num_vertices):
            assert v in looped.neighbors(v)

    def test_has_self_loops(self, tiny_graph):
        assert not tiny_graph.has_self_loops()
        assert tiny_graph.with_self_loops().has_self_loops()

    def test_reverse_transposes(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert rev.num_edges == tiny_graph.num_edges
        # 0 <- 1 in the original becomes 1 <- 0 in the reverse.
        assert 0 in rev.neighbors(1)
        assert 3 in rev.neighbors(0)

    def test_double_reverse_is_identity(self, small_uniform):
        twice = small_uniform.reverse().reverse()
        np.testing.assert_array_equal(twice.indptr, small_uniform.indptr)
        np.testing.assert_array_equal(twice.indices, small_uniform.indices)

    def test_to_scipy_round_trip(self, tiny_graph):
        mat = tiny_graph.to_scipy()
        back = CSRGraph.from_scipy(mat)
        np.testing.assert_array_equal(back.indptr, tiny_graph.indptr)
        np.testing.assert_array_equal(back.indices, tiny_graph.indices)

    def test_from_scipy_rejects_non_square(self):
        import scipy.sparse as sp

        with pytest.raises(GraphError):
            CSRGraph.from_scipy(sp.csr_matrix((2, 3)))


class TestTranspose:
    """The cached transpose (CSC view) behind the batched backward."""

    def test_transpose_round_trip_is_identity(self, small_uniform):
        # The cached transpose keeps a back-pointer, so the round trip
        # returns the *same object* — not merely an equal graph.
        assert small_uniform.transpose().transpose() is small_uniform

    def test_transpose_arrays_match_from_edges(self, tiny_graph):
        """transpose() must build exactly the graph from_edges would
        build from the reversed edge list (same row-sorted layout)."""
        reversed_edges = []
        for dst in range(tiny_graph.num_vertices):
            for src in tiny_graph.neighbors(dst):
                reversed_edges.append((int(src), dst))
        expected = CSRGraph.from_edges(tiny_graph.num_vertices, reversed_edges)
        t = tiny_graph.transpose()
        np.testing.assert_array_equal(t.indptr, expected.indptr)
        np.testing.assert_array_equal(t.indices, expected.indices)

    def test_degree_invariants(self, small_uniform):
        t = small_uniform.transpose()
        # Total edge count is preserved; the transposed in-degrees are
        # the original out-degrees (occurrence counts in indices).
        assert t.num_edges == small_uniform.num_edges
        out_degs = np.bincount(
            small_uniform.indices, minlength=small_uniform.num_vertices
        )
        np.testing.assert_array_equal(t.degrees(), out_degs)
        assert t.degrees().sum() == small_uniform.degrees().sum()

    def test_csc_arrays_permutation_carries_edge_data(self, tiny_graph):
        """csc_arrays' perm maps forward edge slots to transposed slots:
        scattering each forward edge's destination through it must yield
        the transposed indices array."""
        t_indptr, t_indices, perm = tiny_graph.csc_arrays()
        dst = np.repeat(
            np.arange(tiny_graph.num_vertices), tiny_graph.degrees()
        )
        np.testing.assert_array_equal(dst[perm], t_indices)
        np.testing.assert_array_equal(
            tiny_graph.indices[perm],
            np.repeat(np.arange(tiny_graph.num_vertices), np.diff(t_indptr)),
        )

    def test_transpose_is_cached(self, tiny_graph):
        assert tiny_graph.transpose() is tiny_graph.transpose()

    def test_empty_graph_transpose(self):
        graph = CSRGraph.from_edges(0, [])
        t = graph.transpose()
        assert t.num_vertices == 0 and t.num_edges == 0

    def test_self_loops_survive_transpose(self):
        graph = CSRGraph.from_edges(4, [(0, 0), (1, 2), (3, 3)])
        t = graph.transpose()
        assert 0 in t.neighbors(0)
        assert 3 in t.neighbors(3)
        assert 1 in t.neighbors(2)

    def test_pickling_drops_cached_transpose(self, tiny_graph):
        import pickle

        tiny_graph.transpose()  # populate the cache
        clone = pickle.loads(pickle.dumps(tiny_graph))
        assert clone._transpose is None and clone._csc is None
        # And the clone can rebuild it from scratch.
        assert clone.transpose().num_edges == tiny_graph.num_edges


class TestTransposeEviction:
    """Backward JIT entries keyed on a graph die with the graph — the
    same weakref-eviction contract the forward cache established."""

    def test_backward_entries_evicted_when_graph_dies(self):
        import gc

        from repro.graphs import uniform_graph
        from repro.kernels.jit import JitKernelCache, KernelSpec

        cache = JitKernelCache()
        graph = uniform_graph(30, avg_degree=3.0, seed=2)
        spec = KernelSpec(4, "gcn")
        cache.specialize_batched_backward(graph, spec)
        cache.specialize_backward(graph, spec)
        assert len(cache) == 2
        del graph
        gc.collect()
        assert len(cache) == 0


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    edges=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60
    ),
)
def test_from_edges_property(n, edges):
    """Any in-range edge list builds a valid graph with exact edge count."""
    edges = [(d % n, s % n) for d, s in edges]
    graph = CSRGraph.from_edges(n, edges)
    graph.validate()
    assert graph.num_vertices == n
    assert graph.num_edges == len(set(edges))
    # Every edge is present exactly where expected.
    for dst, src in set(edges):
        assert src in graph.neighbors(dst)
