"""Unit tests for the machine model."""

import pytest

from repro.perf import DmaConfig, MachineConfig, cascade_lake_12, cascade_lake_28


class TestMachineConfig:
    def test_paper_platform_constants(self):
        machine = cascade_lake_28()
        assert machine.cores == 28
        assert machine.frequency_hz == 2.7e9
        assert machine.dram_bandwidth == 140.8e9
        assert machine.l2_bytes == 1024 * 1024

    def test_peak_flops(self):
        machine = cascade_lake_28()
        assert machine.peak_flops == pytest.approx(28 * 2.7e9 * 64)

    def test_feature_cache_is_l2_plus_l3(self):
        machine = cascade_lake_28()
        assert machine.feature_cache_bytes == (
            machine.l2_total_bytes + machine.l3_total_bytes
        )

    def test_scaled_cache_preserves_ratio(self):
        machine = cascade_lake_28()
        scaled = machine.scaled_cache_bytes(1e6, 1e9)
        assert scaled == pytest.approx(machine.feature_cache_bytes / 1000)

    def test_scaled_cache_rejects_bad_paper_bytes(self):
        with pytest.raises(ValueError):
            cascade_lake_28().scaled_cache_bytes(1.0, 0.0)

    def test_gemm_time_small_slower(self):
        machine = cascade_lake_28()
        assert machine.gemm_time(1e9, small=True) > machine.gemm_time(1e9)

    def test_stream_time(self):
        machine = cascade_lake_28()
        one_second_bytes = machine.dram_bandwidth * machine.stream_bw_efficiency
        assert machine.stream_time(one_second_bytes) == pytest.approx(1.0)

    def test_with_cores(self):
        assert cascade_lake_28().with_cores(4).cores == 4

    def test_twelve_core_host(self):
        assert cascade_lake_12().cores == 12


class TestDmaConfig:
    def test_paper_storage_total(self):
        """Section 6: the engine's storage totals 4.5KB."""
        dma = DmaConfig()
        assert dma.storage_bytes == 2048 + 2048 + 128 + 128

    def test_output_buffer_elements(self):
        assert DmaConfig().output_buffer_elements == 512

    def test_tracking_table_default(self):
        assert DmaConfig().tracking_table_entries == 32

    def test_vector_unit_width(self):
        assert DmaConfig().vector_lanes == 4
