"""Execution kernels: the six Figure-11 strategies on the value plane."""

from .base import (
    AggregationKernel,
    DEFAULT_ENGINE,
    ENGINES,
    FusedLayerKernel,
    KernelStats,
    UpdateParams,
    resolve_engine,
    validate_inputs,
)
from .basic import (
    BasicKernel,
    DEFAULT_PREFETCH_DISTANCE,
    DEFAULT_TASK_SIZE,
    PREFETCH_LINES_PER_VECTOR,
)
from .compressed import CompressedFusedKernel, CompressedKernel
from .distgnn import DistGNNKernel
from .fused import DEFAULT_BLOCK_SIZE, DEFAULT_BLOCKS_PER_TASK, FusedKernel
from .jit import JitKernelCache, KernelSpec
from .spmm import SpMMKernel, spmm_layer

__all__ = [
    "AggregationKernel",
    "DEFAULT_ENGINE",
    "ENGINES",
    "FusedLayerKernel",
    "KernelStats",
    "UpdateParams",
    "resolve_engine",
    "validate_inputs",
    "BasicKernel",
    "DEFAULT_PREFETCH_DISTANCE",
    "DEFAULT_TASK_SIZE",
    "PREFETCH_LINES_PER_VECTOR",
    "CompressedFusedKernel",
    "CompressedKernel",
    "DistGNNKernel",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_BLOCKS_PER_TASK",
    "FusedKernel",
    "JitKernelCache",
    "KernelSpec",
    "SpMMKernel",
    "spmm_layer",
]
