"""Unit tests for run-report building and the telemetry singletons."""

import json

import repro
from repro import obs
from repro.obs import (
    MetricsRegistry,
    Tracer,
    build_run_report,
    environment_info,
    write_json,
)


class TestEnvironmentInfo:
    def test_required_keys(self):
        env = environment_info()
        for key in (
            "repro_version", "git_sha", "python", "numpy",
            "platform", "cpu_count",
        ):
            assert key in env
        assert env["repro_version"] == repro.__version__

    def test_json_serializable(self):
        json.dumps(environment_info())


class TestBuildRunReport:
    def test_joins_spans_metrics_meta(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        with tracer.span("epoch"):
            with tracer.span("layer") as span:
                span.add_counters({"gathers": 4})
        metrics.inc("kernel.basic.gathers", 4)
        report = build_run_report(
            tracer, metrics, meta={"command": "test", "workers": 2}
        )
        assert report["schema"] == 1
        assert report["meta"]["workers"] == 2
        assert len(report["spans"]) == 2
        assert report["span_tree"][0]["name"] == "epoch"
        assert report["span_tree"][0]["children"][0]["name"] == "layer"
        assert report["metrics"]["kernel.basic.gathers"]["value"] == 4.0
        assert report["counter_totals"] == {"gathers": 4.0}

    def test_empty_report(self):
        report = build_run_report()
        assert report["spans"] == []
        assert report["metrics"] == {}
        json.dumps(report)

    def test_write_json(self, tmp_path):
        path = tmp_path / "run.json"
        write_json(str(path), build_run_report(meta={"x": 1}))
        loaded = json.loads(path.read_text())
        assert loaded["meta"] == {"x": 1}


class TestGlobalSingletons:
    def test_disabled_by_default(self):
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().enabled is False

    def test_enable_disable_round_trip(self):
        tracer, metrics = obs.enable()
        try:
            assert obs.get_tracer() is tracer
            assert obs.get_metrics() is metrics
            assert tracer.enabled and metrics.enabled
        finally:
            obs.disable()
        assert obs.get_tracer().enabled is False
        assert obs.get_metrics().enabled is False
