"""Unit tests for the event-driven Figure-10 request timeline."""

import pytest

from repro.dma.timeline import (
    DescriptorJob,
    DmaRequestTimeline,
    figure10_example,
)


class TestDescriptorJob:
    def test_total_input_lines(self):
        job = DescriptorJob(index_lines=3, inputs_per_index_line=2, lines_per_input=2)
        assert job.total_input_lines == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            DescriptorJob(index_lines=-1, inputs_per_index_line=1, lines_per_input=1)
        with pytest.raises(ValueError):
            DescriptorJob(index_lines=1, inputs_per_index_line=0, lines_per_input=1)


class TestFigure10Behaviors:
    def test_indices_issued_before_dependent_inputs(self):
        timeline, jobs = figure10_example()
        result = timeline.run(jobs)
        first_input_issue = min(
            e.time for e in result.events_of("issue_input")
        )
        first_index_complete = min(
            e.time for e in result.events_of("complete_index")
        )
        # No input can issue before its index line returned.
        assert first_input_issue >= first_index_complete

    def test_tracking_table_never_overflows(self):
        timeline, jobs = figure10_example()
        result = timeline.run(jobs)
        assert result.max_table_occupancy <= 4

    def test_index_buffer_never_overflows(self):
        timeline, jobs = figure10_example()
        result = timeline.run(jobs)
        assert result.max_index_buffer_occupancy <= 2

    def test_all_lines_fetched(self):
        timeline, jobs = figure10_example()
        result = timeline.run(jobs)
        assert len(result.events_of("complete_index")) == 3
        assert len(result.events_of("complete_input")) == 12

    def test_index_priority_over_inputs(self):
        """Once an index can issue, it wins over pending input fetches —
        't3: the table gives priority to ... idx[4:5] over input data'."""
        timeline, jobs = figure10_example()
        result = timeline.run(jobs)
        # The third index line issues before the last input lines do.
        idx_issues = result.events_of("issue_index")
        input_issues = result.events_of("issue_input")
        third_index_time = idx_issues[2].time
        later_inputs = [e for e in input_issues if e.time > third_index_time]
        assert later_inputs, "index did not preempt remaining input fetches"


class TestScaling:
    def _time(self, entries, jobs=None):
        timeline = DmaRequestTimeline(
            tracking_entries=entries, index_buffer_entries=4,
            memory_latency=100.0, issue_interval=0.5,
        )
        jobs = jobs or [
            DescriptorJob(index_lines=8, inputs_per_index_line=2, lines_per_input=2)
            for _ in range(4)
        ]
        return timeline.run(jobs).finish_time

    def test_more_entries_faster(self):
        t8 = self._time(8)
        t16 = self._time(16)
        t32 = self._time(32)
        assert t16 < t8
        assert t32 <= t16

    def test_diminishing_returns(self):
        """The Figure 16 shape: 8->16 buys much more than 32->64."""
        t8, t16, t32, t64 = (self._time(e) for e in (8, 16, 32, 64))
        gain_early = t8 - t16
        gain_late = t32 - t64
        assert gain_early > gain_late

    def test_second_descriptor_overlaps(self):
        """Two small descriptors finish in far less than twice one
        descriptor's time — the engine 'simultaneously processes a second
        descriptor' when dependences would otherwise idle the table.
        (Small jobs: a single descriptor cannot fill the tracking table,
        so its index->input dependency leaves slack the second one uses.)
        """
        small = DescriptorJob(index_lines=1, inputs_per_index_line=2, lines_per_input=2)
        one = self._time(16, [small])
        two = self._time(16, [small, small])
        assert two < 2 * one * 0.75


class TestValidation:
    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            DmaRequestTimeline(tracking_entries=0)
        with pytest.raises(ValueError):
            DmaRequestTimeline(index_buffer_entries=0)
        with pytest.raises(ValueError):
            DmaRequestTimeline(memory_latency=-1)

    def test_empty_job_list(self):
        result = DmaRequestTimeline().run([])
        assert result.finish_time == 0.0

    def test_zero_index_job(self):
        result = DmaRequestTimeline().run(
            [DescriptorJob(index_lines=0, inputs_per_index_line=1, lines_per_input=1)]
        )
        assert result.finish_time == 0.0
