"""Numerics health guards for training runs.

A full-batch GNN run that NaNs at epoch 3 silently burns the remaining
epochs producing garbage — the loss curve only reveals it afterwards, if
anyone looks.  The :class:`HealthMonitor` checks each epoch's numerics
as they are produced:

* **NaN/Inf detection** in the logits, every layer's gradients, and
  every layer's weights — the diagnostic names the offending layer,
  parameter, and epoch;
* **loss divergence** — the loss blowing past a multiple of the best
  loss seen so far (the classic too-high-learning-rate signature);
* **convergence stall** — no relative improvement of the best loss over
  a trailing window (a warning, not a failure: a stalled run is
  wasteful, not wrong).

Findings publish ``health.*`` metrics into the active registry and, for
the fatal kinds, raise :class:`HealthError` so the run **fails fast**
within one epoch of the corruption instead of finishing it.

Like the rest of :mod:`repro.obs`, the monitor is opt-in: ``Trainer``
takes ``health=None`` by default and pays nothing when it stays off.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

logger = logging.getLogger(__name__)

#: Issue kinds that abort the run when ``fail_fast`` is set.
FATAL_KINDS = ("non_finite", "loss_divergence")

#: Default loss-blowup multiple over the best loss flagged as divergence.
DEFAULT_DIVERGENCE_FACTOR = 4.0

#: Default trailing window (epochs) for the convergence-stall detector.
DEFAULT_STALL_WINDOW = 20

#: Default minimum relative best-loss improvement expected per window.
DEFAULT_STALL_TOLERANCE = 1e-3


@dataclass
class HealthIssue:
    """One guard finding, located to layer/parameter/epoch."""

    kind: str  # "non_finite" | "loss_divergence" | "convergence_stall"
    epoch: int
    message: str
    layer: Optional[int] = None
    param: Optional[str] = None  # "logits" | "weight" | "bias" | "h_in" | "loss"

    @property
    def fatal(self) -> bool:
        return self.kind in FATAL_KINDS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "epoch": self.epoch,
            "layer": self.layer,
            "param": self.param,
            "message": self.message,
        }

    def __str__(self) -> str:
        where = f"epoch {self.epoch}"
        if self.layer is not None:
            where += f", layer {self.layer}"
        if self.param is not None:
            where += f", {self.param}"
        return f"[{self.kind}] {where}: {self.message}"


class HealthError(RuntimeError):
    """Raised by a fail-fast monitor on a fatal numerics issue."""

    def __init__(self, issues: Sequence[HealthIssue]):
        self.issues = list(issues)
        super().__init__(
            "training health check failed:\n  "
            + "\n  ".join(str(issue) for issue in self.issues)
        )


def _non_finite_fraction(array: np.ndarray) -> float:
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(~np.isfinite(array)) / array.size)


@dataclass
class HealthMonitor:
    """Per-epoch numerics guard (see the module docstring).

    Args:
        divergence_factor: loss above ``factor * best_loss`` is flagged
            divergent.
        stall_window: trailing epochs with no best-loss improvement
            beyond ``stall_tolerance`` (relative) flagged as a stall.
        stall_tolerance: relative improvement that resets the stall
            clock.
        fail_fast: raise :class:`HealthError` on fatal issues (NaN/Inf,
            divergence); stalls never raise.
    """

    divergence_factor: float = DEFAULT_DIVERGENCE_FACTOR
    stall_window: int = DEFAULT_STALL_WINDOW
    stall_tolerance: float = DEFAULT_STALL_TOLERANCE
    fail_fast: bool = True
    issues: List[HealthIssue] = field(default_factory=list)
    _best_loss: float = float("inf")
    _best_epoch: int = -1
    _stalled: bool = False

    def __post_init__(self) -> None:
        if self.divergence_factor <= 1.0:
            raise ValueError(
                f"divergence_factor must be > 1, got {self.divergence_factor}"
            )
        if self.stall_window < 1:
            raise ValueError(f"stall_window must be >= 1, got {self.stall_window}")

    # ------------------------------------------------------------------
    def check_epoch(
        self,
        epoch: int,
        loss: float,
        logits: Optional[np.ndarray] = None,
        grad_norms: Optional[Dict[str, Dict[str, float]]] = None,
        weight_norms: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> List[HealthIssue]:
        """Run every guard against one epoch's numerics.

        ``grad_norms`` / ``weight_norms`` are the per-layer L2 norms the
        trainer already computed for the event log — a NaN/Inf anywhere
        in a tensor makes its norm NaN/Inf, so checking the norms checks
        the tensors without a second full pass.

        Returns this epoch's issues; raises :class:`HealthError` when a
        fatal issue is found and ``fail_fast`` is set.
        """
        found: List[HealthIssue] = []
        if not np.isfinite(loss):
            found.append(
                HealthIssue(
                    kind="non_finite",
                    epoch=epoch,
                    param="loss",
                    message=f"loss is {loss!r}",
                )
            )
        if logits is not None and not np.isfinite(logits).all():
            found.append(
                HealthIssue(
                    kind="non_finite",
                    epoch=epoch,
                    param="logits",
                    message=(
                        f"{_non_finite_fraction(logits):.1%} of logits non-finite"
                    ),
                )
            )
        for label, norms in (("grad", grad_norms), ("weight", weight_norms)):
            for layer_key, entry in (norms or {}).items():
                for param, value in entry.items():
                    if not np.isfinite(value):
                        found.append(
                            HealthIssue(
                                kind="non_finite",
                                epoch=epoch,
                                layer=int(layer_key),
                                param=f"{label}.{param}",
                                message=f"{label} norm of {param} is {value!r}",
                            )
                        )
        found.extend(self._check_loss_trajectory(epoch, loss))
        self._publish(epoch, found)
        self.issues.extend(found)
        fatal = [issue for issue in found if issue.fatal]
        for issue in found:
            logger.warning("health: %s", issue)
        if fatal and self.fail_fast:
            raise HealthError(fatal)
        return found

    def _check_loss_trajectory(self, epoch: int, loss: float) -> List[HealthIssue]:
        found: List[HealthIssue] = []
        if np.isfinite(loss):
            improved = loss < self._best_loss * (1.0 - self.stall_tolerance)
            if (
                self._best_epoch >= 0
                and loss > self.divergence_factor * max(self._best_loss, 1e-12)
            ):
                found.append(
                    HealthIssue(
                        kind="loss_divergence",
                        epoch=epoch,
                        param="loss",
                        message=(
                            f"loss {loss:.4g} exceeds {self.divergence_factor:g}x "
                            f"best loss {self._best_loss:.4g} "
                            f"(epoch {self._best_epoch})"
                        ),
                    )
                )
            if loss < self._best_loss:
                if improved:
                    self._best_epoch = epoch
                    self._stalled = False
                self._best_loss = min(self._best_loss, loss)
            elif (
                not self._stalled
                and self._best_epoch >= 0
                and epoch - self._best_epoch >= self.stall_window
            ):
                self._stalled = True
                found.append(
                    HealthIssue(
                        kind="convergence_stall",
                        epoch=epoch,
                        param="loss",
                        message=(
                            f"best loss {self._best_loss:.4g} unimproved for "
                            f"{epoch - self._best_epoch} epochs "
                            f"(window {self.stall_window})"
                        ),
                    )
                )
        return found

    def _publish(self, epoch: int, found: List[HealthIssue]) -> None:
        # Late import: the package __init__ imports this module before
        # get_metrics exists, so binding it at module level would cycle.
        from . import get_metrics

        metrics = get_metrics()
        if not metrics.enabled:
            return
        metrics.inc("health.checks")
        for issue in found:
            metrics.inc(f"health.{issue.kind}")
            metrics.set_gauge("health.last_issue_epoch", float(epoch))
        if found:
            metrics.inc("health.issues", len(found))

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not any(issue.fatal for issue in self.issues)

    def summary(self) -> str:
        if not self.issues:
            return "health: ok (no issues)"
        lines = [f"health: {len(self.issues)} issue(s)"]
        lines.extend(f"  {issue}" for issue in self.issues)
        return "\n".join(lines)
