"""Unit tests for the training numerics health guards."""

import numpy as np
import pytest

from repro import obs
from repro.obs.health import HealthError, HealthIssue, HealthMonitor


class TestNonFinite:
    def test_nan_loss_fails_fast(self):
        monitor = HealthMonitor()
        with pytest.raises(HealthError) as excinfo:
            monitor.check_epoch(3, float("nan"))
        issue = excinfo.value.issues[0]
        assert issue.kind == "non_finite"
        assert issue.epoch == 3
        assert issue.param == "loss"

    def test_nan_weight_norm_names_layer_and_epoch(self):
        monitor = HealthMonitor()
        with pytest.raises(HealthError) as excinfo:
            monitor.check_epoch(
                2, 0.5,
                weight_norms={"1": {"weight": float("nan"), "bias": 1.0}},
            )
        issue = excinfo.value.issues[0]
        assert issue.layer == 1
        assert issue.epoch == 2
        assert issue.param == "weight.weight"
        assert "layer 1" in str(issue)
        assert "epoch 2" in str(issue)

    def test_inf_grad_norm_detected(self):
        monitor = HealthMonitor(fail_fast=False)
        found = monitor.check_epoch(
            0, 0.5, grad_norms={"0": {"weight": float("inf")}}
        )
        assert [i.kind for i in found] == ["non_finite"]
        assert found[0].param == "grad.weight"

    def test_non_finite_logits_detected(self):
        monitor = HealthMonitor(fail_fast=False)
        logits = np.zeros((4, 3), dtype=np.float32)
        logits[1, 2] = np.nan
        found = monitor.check_epoch(0, 0.5, logits=logits)
        assert found[0].param == "logits"
        assert "8.3%" in found[0].message

    def test_clean_epoch_no_issues(self):
        monitor = HealthMonitor()
        found = monitor.check_epoch(
            0, 0.9,
            logits=np.zeros((4, 3), dtype=np.float32),
            grad_norms={"0": {"weight": 0.1}},
            weight_norms={"0": {"weight": 1.0}},
        )
        assert found == []
        assert monitor.ok


class TestLossTrajectory:
    def test_divergence_raises(self):
        monitor = HealthMonitor(divergence_factor=4.0)
        monitor.check_epoch(0, 1.0)
        with pytest.raises(HealthError) as excinfo:
            monitor.check_epoch(1, 5.0)
        assert excinfo.value.issues[0].kind == "loss_divergence"

    def test_first_epoch_never_divergent(self):
        monitor = HealthMonitor()
        assert monitor.check_epoch(0, 1e6) == []

    def test_stall_is_warning_not_error(self):
        monitor = HealthMonitor(stall_window=3)
        monitor.check_epoch(0, 1.0)
        found = []
        for epoch in range(1, 6):
            found = monitor.check_epoch(epoch, 1.0)  # never improves
        kinds = [issue.kind for issue in monitor.issues]
        assert "convergence_stall" in kinds
        assert monitor.ok  # stall is not fatal

    def test_stall_reported_once(self):
        monitor = HealthMonitor(stall_window=2)
        monitor.check_epoch(0, 1.0)
        for epoch in range(1, 8):
            monitor.check_epoch(epoch, 1.0)
        stalls = [i for i in monitor.issues if i.kind == "convergence_stall"]
        assert len(stalls) == 1

    def test_improvement_resets_stall_clock(self):
        monitor = HealthMonitor(stall_window=3)
        loss = 1.0
        for epoch in range(10):
            loss *= 0.9  # steady improvement
            monitor.check_epoch(epoch, loss)
        assert monitor.issues == []

    def test_fail_fast_off_records_and_continues(self):
        monitor = HealthMonitor(fail_fast=False)
        found = monitor.check_epoch(0, float("nan"))
        assert found[0].fatal
        assert not monitor.ok
        assert "non_finite" in monitor.summary()


class TestValidation:
    def test_bad_divergence_factor(self):
        with pytest.raises(ValueError):
            HealthMonitor(divergence_factor=1.0)

    def test_bad_stall_window(self):
        with pytest.raises(ValueError):
            HealthMonitor(stall_window=0)


class TestMetricsPublication:
    def test_health_metrics_published_when_enabled(self):
        _, metrics = obs.enable()
        try:
            monitor = HealthMonitor(fail_fast=False)
            monitor.check_epoch(0, 1.0)
            monitor.check_epoch(4, float("nan"))
            snap = metrics.snapshot()
        finally:
            obs.disable()
        assert snap["health.checks"]["value"] == 2.0
        assert snap["health.non_finite"]["value"] == 1.0
        assert snap["health.issues"]["value"] == 1.0
        assert snap["health.last_issue_epoch"]["value"] == 4.0

    def test_disabled_registry_untouched(self):
        monitor = HealthMonitor(fail_fast=False)
        monitor.check_epoch(0, float("nan"))  # must not raise or publish
        assert len(obs.get_metrics()._metrics) == 0


class TestIssueDocument:
    def test_to_dict_round_trip(self):
        issue = HealthIssue(
            kind="non_finite", epoch=1, layer=0, param="weight.bias", message="x"
        )
        doc = issue.to_dict()
        assert doc == {
            "kind": "non_finite",
            "epoch": 1,
            "layer": 0,
            "param": "weight.bias",
            "message": "x",
        }
