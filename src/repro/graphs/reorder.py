"""Vertex processing orders — Section 4.4 of the paper.

During aggregation, processing two vertices that share a neighbor close
together in time shrinks the reuse distance of that neighbor's feature
vector.  Algorithm 3 greedily assigns each vertex to the "group" of its
highest-degree neighbor; emitting groups contiguously then clusters all
readers of each hub together.

The order is a *processing order*, not a relabeling: kernels iterate
``for v in order`` while all arrays stay indexed by original vertex id.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .csr import CSRGraph


def natural_order(graph: CSRGraph) -> np.ndarray:
    """Identity order — process vertices as stored."""
    return np.arange(graph.num_vertices, dtype=np.int64)


def randomized_order(graph: CSRGraph, seed: Optional[int] = 0) -> np.ndarray:
    """A uniformly random permutation.

    Figure 15 uses the average over 5 such orders as the "graph with average
    locality" reference point, destroying any locality the dataset's source
    ordering already embeds.
    """
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_vertices).astype(np.int64)


def degree_sorted_order(graph: CSRGraph, descending: bool = True) -> np.ndarray:
    """Sort by degree — an ablation baseline for Algorithm 3.

    Sorting clusters hubs next to each other but, unlike Algorithm 3, does
    not cluster the *readers* of each hub.
    """
    degs = graph.degrees()
    order = np.argsort(-degs if descending else degs, kind="stable")
    return order.astype(np.int64)


def locality_order(graph: CSRGraph) -> np.ndarray:
    """Algorithm 3: group each vertex under its highest-degree neighbor.

    For each vertex ``v`` find ``u' = argmax degree`` over ``N(v) ∪ {v}``
    and append ``v`` to ``L[u']``.  The final order ``M`` emits the groups
    in vertex-id order of their owners.  Complexity ``O(|V| + |E|)``.

    Every vertex appears exactly once in the output (it joins exactly one
    group), so the result is a permutation — a property the tests check.
    """
    n = graph.num_vertices
    degs = graph.degrees()
    indptr, indices = graph.indptr, graph.indices

    # owner[v] = the highest-degree vertex among N(v) ∪ {v}; ties broken
    # toward the lowest id for determinism.  Vectorized as a segment max
    # over the lexicographic key (degree desc, id asc) packed into one
    # int64 score: deg * (n + 1) - id is strictly monotone in that key
    # because ids stay below n + 1.
    owner = np.arange(n, dtype=np.int64)
    if graph.num_edges:
        scores = degs[indices] * np.int64(n + 1) - indices
        nonempty = np.flatnonzero(degs)
        best = np.maximum.reduceat(scores, indptr[nonempty])
        self_scores = degs[nonempty] * np.int64(n + 1) - nonempty
        take = best > self_scores
        won = best[take]
        owner_degs = (won + n) // (n + 1)
        owner[nonempty[take]] = owner_degs * (n + 1) - won

    # Emit groups: a counting sort of vertices by owner id preserves the
    # "all members of L[u'] adjacent" property of Lines 8-12.
    return np.argsort(owner, kind="stable").astype(np.int64)


def apply_order(graph: CSRGraph, order: np.ndarray) -> CSRGraph:
    """Physically relabel a graph so that ``order[i]`` becomes vertex ``i``.

    Used when a caller wants the reordering baked into the CSR arrays
    (e.g. to hand a single graph object to a kernel with no order support).
    """
    n = graph.num_vertices
    order = np.asarray(order, dtype=np.int64)
    if not is_permutation(order, n):
        raise ValueError("order must be a permutation of all vertex ids")
    new_id = np.empty(n, dtype=np.int64)
    new_id[order] = np.arange(n, dtype=np.int64)
    dst = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    edges = np.stack([new_id[dst], new_id[graph.indices]], axis=1)
    return CSRGraph.from_edges(
        n, edges, name=graph.name + "@reordered", deduplicate=False
    )


def is_permutation(order: np.ndarray, n: int) -> bool:
    """True iff ``order`` is a permutation of ``0..n-1``."""
    order = np.asarray(order)
    if order.shape != (n,):
        return False
    seen = np.zeros(n, dtype=bool)
    valid = (order >= 0) & (order < n)
    if not valid.all():
        return False
    seen[order] = True
    return bool(seen.all())
