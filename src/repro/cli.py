"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``datasets`` — print the Table-3 twin statistics.
* ``speedup`` — Figure-11-style speedup column for one dataset.
* ``characterize`` — the full Table-4 layout for one or more datasets.
* ``train`` — full-batch training demo on a twin.
* ``experiment`` — run one named paper artifact (fig2 ... tab5).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .graphs import DATASET_NAMES, graph_stats, load_dataset, paper_row

    for name in DATASET_NAMES:
        stats = graph_stats(load_dataset(name, scale=args.scale))
        vertices_m, edges_m, degree, f_input = paper_row(name)
        print(stats.as_row())
        print(
            f"{'':<13}paper: |V|={vertices_m}M |E|={edges_m}M "
            f"deg={degree} F_input={f_input}"
        )
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from .graphs import input_feature_size, load_dataset
    from .perf import CostModel, VARIANTS

    graph = load_dataset(args.dataset, scale=args.scale)
    model = CostModel(graph)
    f_input = input_feature_size(args.dataset, 1.0)
    mode = "training" if args.training else "inference"
    print(
        f"{args.dataset} (twin scale {args.scale}), {mode}, "
        f"{args.sparsity:.0%} feature sparsity — speedup over distgnn:"
    )
    variants = [v for v in VARIANTS if v not in ("randomized", "f-locality")]
    if not args.training:
        variants = [v for v in variants if v != "c-locality"]
    for variant in variants:
        if variant == "distgnn":
            continue
        speedup = model.speedup(
            variant, f_input, args.hidden,
            training=args.training, sparsity=args.sparsity,
        )
        print(f"  {variant:<12} {speedup:5.2f}x")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from .graphs import input_feature_size, load_dataset
    from .perf.report import characterization_table

    names = args.datasets or ["products"]
    graphs = {name: load_dataset(name, scale=args.scale) for name in names}
    f_input = {name: input_feature_size(name, 1.0) for name in names}
    table = characterization_table(graphs, f_input, sparsity=args.sparsity)
    print(table.render())
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .graphs import load_dataset, synthetic_features
    from .nn import Adam, Trainer, build_model

    graph = load_dataset(args.dataset, scale=args.scale)
    features = synthetic_features(graph, args.features, seed=args.seed)
    labels = np.random.default_rng(args.seed).integers(
        0, args.classes, graph.num_vertices
    )
    model = build_model(
        args.model, args.features, args.hidden, args.classes,
        num_layers=args.layers, dropout=args.dropout, seed=args.seed,
    )
    trainer = Trainer(model, Adam(model, lr=args.lr), profile_sparsity=True)
    history = trainer.fit(graph, features, labels, epochs=args.epochs, verbose=True)
    print("\nhidden-feature sparsity (Section 2.2):")
    print(history.sparsity.summary())
    return 0


_EXPERIMENTS = {
    "fig2": ("fig2_gpu_sampling", True),
    "fig3": ("fig3_topdown", True),
    "tab3": ("tab3_datasets", True),
    "fig11a": ("fig11_software_speedups", True),
    "fig11b": ("fig11_software_speedups", True),
    "fig13": ("fig13_fusion_breakdown", True),
    "fig14": ("fig14_compression_sweep", True),
    "fig15": ("fig15_locality", True),
    "tab4": ("tab4_characterization", True),
    "fig12a": ("fig12_dma_speedups", False),
    "fig12b": ("fig12_dma_speedups", False),
    "fig16": ("fig16_tracking_table", False),
    "tab5": ("tab5_cache_reduction", False),
    "sec732": ("sec732_memory_system", False),
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .bench import figures

    key = args.name
    if key not in _EXPERIMENTS:
        print(f"unknown experiment {key!r}; choose from {sorted(_EXPERIMENTS)}")
        return 2
    fn_name, takes_ctx = _EXPERIMENTS[key]
    fn = getattr(figures, fn_name)
    kwargs = {}
    if key == "fig11b":
        kwargs["training"] = True
    if key == "fig12b":
        kwargs["training"] = True
    if key == "fig14":
        kwargs["training"] = args.training
    if takes_ctx:
        experiment = fn(figures.BenchContext(scale=args.scale), **kwargs)
    else:
        experiment = fn(**kwargs)
    print(experiment.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Graphite (ISCA 2022) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("datasets", help="Table-3 twin statistics")
    p.add_argument("--scale", type=float, default=0.5)
    p.set_defaults(func=_cmd_datasets)

    p = sub.add_parser("speedup", help="Figure-11 speedup column")
    p.add_argument("dataset", choices=["products", "wikipedia", "papers", "twitter"])
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--hidden", type=int, default=256)
    p.add_argument("--sparsity", type=float, default=0.5)
    p.add_argument("--training", action="store_true")
    p.set_defaults(func=_cmd_speedup)

    p = sub.add_parser("characterize", help="Table-4 characterization")
    p.add_argument("datasets", nargs="*", default=None)
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--sparsity", type=float, default=0.5)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("train", help="full-batch training demo")
    p.add_argument("dataset", choices=["products", "wikipedia", "papers", "twitter"])
    p.add_argument("--scale", type=float, default=0.25)
    p.add_argument("--model", choices=["gcn", "sage"], default="gcn")
    p.add_argument("--features", type=int, default=64)
    p.add_argument("--hidden", type=int, default=64)
    p.add_argument("--classes", type=int, default=8)
    p.add_argument("--layers", type=int, default=2)
    p.add_argument("--dropout", type=float, default=0.0)
    p.add_argument("--epochs", type=int, default=5)
    p.add_argument("--lr", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_train)

    p = sub.add_parser("experiment", help="run one paper artifact")
    p.add_argument("name", help=f"one of {sorted(_EXPERIMENTS)}")
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--training", action="store_true")
    p.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
