"""Network-on-chip latency model.

The modeled server's cores and L3 slices sit on a 2-D mesh; the home
directory of a line is its L3 slice, so an access from core ``c`` to a
line homed at slice ``s`` pays a hop-proportional latency (Figure 7a:
the DMA engine "shares the port to the network on chip with the L2"
and requests go "to the home directory of the address").
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MeshNoc:
    """An X-Y routed 2-D mesh of cores/L3 slices.

    Args:
        cores: number of nodes (arranged as the squarest grid).
        hop_cycles: per-hop link + router latency in core cycles.
        base_cycles: fixed injection/ejection overhead.
    """

    cores: int = 28
    hop_cycles: float = 2.0
    base_cycles: float = 4.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.hop_cycles < 0 or self.base_cycles < 0:
            raise ValueError("latencies must be non-negative")

    @property
    def width(self) -> int:
        return max(1, int(math.ceil(math.sqrt(self.cores))))

    def coordinates(self, node: int) -> "tuple[int, int]":
        if not 0 <= node < self.cores:
            raise IndexError(f"node {node} out of range")
        return node % self.width, node // self.width

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance under X-Y routing."""
        sx, sy = self.coordinates(src)
        dx, dy = self.coordinates(dst)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src: int, dst: int) -> float:
        """Cycles for one traversal between two nodes."""
        return self.base_cycles + self.hop_cycles * self.hops(src, dst)

    def home_slice(self, line_address: int) -> int:
        """The L3 slice owning a line (simple address hash)."""
        return (line_address // 64) % self.cores

    def l3_access_latency(self, core: int, line_address: int) -> float:
        """Round-trip cycles from a core to a line's home slice."""
        return 2.0 * self.latency(core, self.home_slice(line_address))

    def average_latency(self) -> float:
        """Mean node-to-node latency over all pairs (uniform traffic)."""
        total = 0.0
        for src in range(self.cores):
            for dst in range(self.cores):
                total += self.latency(src, dst)
        return total / (self.cores * self.cores)
