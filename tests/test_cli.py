"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.scale == 0.5

    def test_speedup_validates_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["speedup", "reddit"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "products" in out and "paper:" in out

    def test_speedup_inference(self, capsys):
        assert main(["speedup", "products", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "combined" in out
        assert "c-locality" not in out  # training-only variant

    def test_speedup_training_includes_locality(self, capsys):
        assert main(["speedup", "products", "--scale", "0.1", "--training"]) == 0
        assert "c-locality" in capsys.readouterr().out

    def test_characterize(self, capsys):
        assert main(["characterize", "products", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Retiring" in out and "FillBufFull" in out

    def test_train(self, capsys):
        code = main([
            "train", "products", "--scale", "0.05", "--epochs", "2",
            "--features", "16", "--hidden", "16",
        ])
        assert code == 0
        assert "sparsity" in capsys.readouterr().out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3", "--scale", "0.1"]) == 0
        assert "retiring" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "fig99"]) == 2
