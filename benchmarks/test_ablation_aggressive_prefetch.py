"""Ablation: deeper software prefetch (the §7.2.1 future-work hint).

"Free fill buffer entries suggest that adding more aggressive software
prefetches may yield additional speedup" — priced with the Table-4
fill-buffer occupancies per dataset/variant.
"""

from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.bench.paper_values import TAB4_CHARACTERIZATION
from repro.dma.extensions import aggressive_prefetch_estimate


def _sweep(ctx):
    exp = Experiment(
        "ablation-prefetch+", "Aggressive prefetch headroom from Table 4"
    )
    for name in ("products", "wikipedia", "papers", "twitter"):
        occupancy = TAB4_CHARACTERIZATION[name]["c-locality"]["fill_full"]
        estimate = aggressive_prefetch_estimate(occupancy)
        exp.add(f"{name} c-locality headroom", estimate.speedup_over_default)
    return exp


def test_aggressive_prefetch_ablation(benchmark, ctx):
    exp = run_experiment(benchmark, _sweep, ctx)
    values = {r.label: r.measured for r in exp.rows}
    # products/wikipedia have idle fill buffers after c-locality ->
    # headroom; papers/twitter are pegged -> none (Section 7.2.1).
    assert values["products c-locality headroom"] > 1.05
    assert values["twitter c-locality headroom"] == 1.0
