"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import CSRGraph, GraphError


class TestConstruction:
    def test_from_edges_basic(self, tiny_graph):
        assert tiny_graph.num_vertices == 5
        assert tiny_graph.num_edges == 7

    def test_neighbors_sorted_per_row(self, tiny_graph):
        assert list(tiny_graph.neighbors(3)) == [0, 1, 2]
        assert list(tiny_graph.neighbors(0)) == [1, 2]

    def test_isolated_vertex_has_no_neighbors(self, tiny_graph):
        assert len(tiny_graph.neighbors(4)) == 0

    def test_degrees(self, tiny_graph):
        assert list(tiny_graph.degrees()) == [2, 1, 1, 3, 0]
        assert tiny_graph.degree(3) == 3

    def test_empty_graph(self):
        graph = CSRGraph.from_edges(0, [])
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_vertices_without_edges(self):
        graph = CSRGraph.from_edges(4, [(0, 1)])
        assert graph.num_vertices == 4
        assert graph.num_edges == 1

    def test_deduplication(self):
        graph = CSRGraph.from_edges(3, [(0, 1), (0, 1), (0, 2)])
        assert graph.num_edges == 2

    def test_deduplication_disabled(self):
        graph = CSRGraph.from_edges(3, [(0, 1), (0, 1)], deduplicate=False)
        assert graph.num_edges == 2

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, [(0, 3)])
        with pytest.raises(GraphError):
            CSRGraph.from_edges(3, [(-1, 0)])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(-1, [])


class TestValidation:
    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_monotonic(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_indptr_tail_matches_indices(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_indices_in_range(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]))


class TestDerived:
    def test_with_self_loops_adds_one_per_vertex(self, tiny_graph):
        looped = tiny_graph.with_self_loops()
        assert looped.num_edges == tiny_graph.num_edges + tiny_graph.num_vertices
        for v in range(looped.num_vertices):
            assert v in looped.neighbors(v)

    def test_has_self_loops(self, tiny_graph):
        assert not tiny_graph.has_self_loops()
        assert tiny_graph.with_self_loops().has_self_loops()

    def test_reverse_transposes(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert rev.num_edges == tiny_graph.num_edges
        # 0 <- 1 in the original becomes 1 <- 0 in the reverse.
        assert 0 in rev.neighbors(1)
        assert 3 in rev.neighbors(0)

    def test_double_reverse_is_identity(self, small_uniform):
        twice = small_uniform.reverse().reverse()
        np.testing.assert_array_equal(twice.indptr, small_uniform.indptr)
        np.testing.assert_array_equal(twice.indices, small_uniform.indices)

    def test_to_scipy_round_trip(self, tiny_graph):
        mat = tiny_graph.to_scipy()
        back = CSRGraph.from_scipy(mat)
        np.testing.assert_array_equal(back.indptr, tiny_graph.indptr)
        np.testing.assert_array_equal(back.indices, tiny_graph.indices)

    def test_from_scipy_rejects_non_square(self):
        import scipy.sparse as sp

        with pytest.raises(GraphError):
            CSRGraph.from_scipy(sp.csr_matrix((2, 3)))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=20),
    edges=st.lists(
        st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60
    ),
)
def test_from_edges_property(n, edges):
    """Any in-range edge list builds a valid graph with exact edge count."""
    edges = [(d % n, s % n) for d, s in edges]
    graph = CSRGraph.from_edges(n, edges)
    graph.validate()
    assert graph.num_vertices == n
    assert graph.num_edges == len(set(edges))
    # Every edge is present exactly where expected.
    for dst, src in set(edges):
        assert src in graph.neighbors(dst)
