"""Unit tests for the LRU embedding cache and its staleness bound."""

import pytest

from repro.serve import EmbeddingCache


class TestLRU:
    def test_miss_then_hit(self):
        cache = EmbeddingCache(capacity=4)
        assert cache.get(1) is None
        cache.put(1, "row1")
        assert cache.get(1) == "row1"
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_evicts_least_recently_used(self):
        cache = EmbeddingCache(capacity=2)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.get(1)  # 1 becomes most-recent
        cache.put(3, "c")  # evicts 2
        assert cache.get(2) is None
        assert cache.get(1) == "a"
        assert cache.get(3) == "c"
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_same_vertex_replaces_without_evicting(self):
        cache = EmbeddingCache(capacity=2)
        cache.put(1, "a")
        cache.put(1, "a2")
        assert len(cache) == 1
        assert cache.get(1) == "a2"
        assert cache.evictions == 0

    def test_invalidate_one_and_all(self):
        cache = EmbeddingCache(capacity=8)
        for v in range(4):
            cache.put(v, v)
        assert cache.invalidate(2) == 1
        assert cache.invalidate(2) == 0
        assert cache.get(2) is None
        assert cache.invalidate() == 3
        assert len(cache) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            EmbeddingCache(capacity=0)
        with pytest.raises(ValueError):
            EmbeddingCache(max_age_s=0.0)


class TestStaleness:
    def test_fresh_entry_within_bound(self):
        cache = EmbeddingCache(capacity=4, max_age_s=10.0)
        cache.put(1, "row", now=100.0)
        assert cache.get(1, now=105.0) == "row"
        assert cache.stale == 0

    def test_stale_entry_is_a_miss_and_dropped(self):
        cache = EmbeddingCache(capacity=4, max_age_s=10.0)
        cache.put(1, "row", now=100.0)
        assert cache.get(1, now=111.0) is None
        assert cache.stale == 1
        assert cache.misses == 1
        assert len(cache) == 0  # dropped, a re-put starts a fresh clock

    def test_no_bound_never_stales(self):
        cache = EmbeddingCache(capacity=4, max_age_s=None)
        cache.put(1, "row", now=0.0)
        assert cache.get(1, now=1e9) == "row"

    def test_hit_rate_and_stats(self):
        cache = EmbeddingCache(capacity=4)
        cache.put(1, "a")
        cache.get(1)
        cache.get(2)
        assert cache.hit_rate == pytest.approx(0.5)
        stats = cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
