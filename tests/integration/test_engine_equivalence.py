"""Engine differential suite: the batched segment-reduce engine vs the
per-vertex loop vs the scalar oracle.

The batched engine replaces the interpreter-bound per-vertex closure loop
with one CSR-segment ``np.add.reduceat`` call per chunk (per block for the
fused kernels).  This suite is the contract that made it safe to flip the
default: every kernel variant, aggregator, and processing order computes
the same rows as :func:`gather_reduce_reference` under both engines, the
work counters are *identical* (not merely close), and the degenerate
shapes — empty graph, edgeless graph, single vertex, all-zero features —
agree too.
"""

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    load_dataset,
    locality_order,
    natural_order,
    randomized_order,
    synthetic_features,
)
from repro.kernels import (
    BasicKernel,
    CompressedFusedKernel,
    CompressedKernel,
    FusedKernel,
    UpdateParams,
)
from repro.nn import Adam, GNNLayer, Trainer, build_model
from repro.nn.aggregate import (
    aggregate_backward_reference,
    gather_reduce_reference,
)

AGGREGATORS = ("gcn", "mean", "sum")
ENGINES = ("loop", "batched")
ORDERS = ("natural", "randomized", "locality")

#: fp32 accumulation order differs between the engines (pairwise numpy
#: reduction vs sequential closure sum); this bounds the drift.
ATOL = 3e-5


def make_order(graph, name):
    if name == "natural":
        return natural_order(graph)
    if name == "randomized":
        return randomized_order(graph, seed=5)
    return locality_order(graph)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("wikipedia", scale=0.04, seed=9)


@pytest.fixture(scope="module")
def features(graph):
    return synthetic_features(graph, 12, seed=4, sparsity=0.4)


@pytest.fixture(scope="module")
def params():
    layer = GNNLayer(12, 8, aggregator="gcn", activation=True, seed=3)
    return UpdateParams(weight=layer.weight, bias=layer.bias, activation=True)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("order_name", ORDERS)
@pytest.mark.parametrize("aggregator", AGGREGATORS)
class TestEveryVariantMatchesOracle:
    def test_basic(self, graph, features, engine, order_name, aggregator):
        order = make_order(graph, order_name)
        reference = gather_reduce_reference(graph, features, aggregator)
        out, _ = BasicKernel(engine=engine).aggregate(
            graph, features, aggregator, order=order
        )
        np.testing.assert_allclose(out, reference, atol=ATOL)

    def test_compressed(self, graph, features, engine, order_name, aggregator):
        order = make_order(graph, order_name)
        reference = gather_reduce_reference(graph, features, aggregator)
        out, _ = CompressedKernel(engine=engine).aggregate(
            graph, features, aggregator, order=order
        )
        np.testing.assert_allclose(out, reference, atol=ATOL)

    def test_fused(self, graph, features, params, engine, order_name, aggregator):
        order = make_order(graph, order_name)
        reference = gather_reduce_reference(graph, features, aggregator)
        h_out, a, _ = FusedKernel(engine=engine).run_layer(
            graph, features, params, aggregator, keep_aggregation=True, order=order
        )
        np.testing.assert_allclose(a, reference, atol=ATOL)
        np.testing.assert_allclose(
            h_out, params.apply(reference.astype(np.float32)), atol=3e-4
        )

    def test_combined(self, graph, features, params, engine, order_name, aggregator):
        order = make_order(graph, order_name)
        reference = gather_reduce_reference(graph, features, aggregator)
        h_out, a, _ = CompressedFusedKernel(engine=engine).run_layer(
            graph, features, params, aggregator, keep_aggregation=True, order=order
        )
        np.testing.assert_allclose(a, reference, atol=ATOL)
        np.testing.assert_allclose(
            h_out, params.apply(reference.astype(np.float32)), atol=3e-4
        )


class TestStatsParity:
    """The counters must be *identical* across engines — the time plane
    prices the structural quantities, so "close" is not good enough."""

    def test_basic_counters_exact(self, graph, features):
        order = randomized_order(graph, seed=5)
        _, loop = BasicKernel(engine="loop").aggregate(
            graph, features, "gcn", order=order
        )
        _, batched = BasicKernel(engine="batched").aggregate(
            graph, features, "gcn", order=order
        )
        assert loop.as_dict(False) == batched.as_dict(False)
        assert loop.gathers > 0 and loop.prefetches > 0

    def test_fused_counters_exact(self, graph, features, params):
        order = randomized_order(graph, seed=5)
        _, _, loop = FusedKernel(engine="loop").run_layer(
            graph, features, params, "gcn", order=order
        )
        _, _, batched = FusedKernel(engine="batched").run_layer(
            graph, features, params, "gcn", order=order
        )
        assert loop.as_dict(False) == batched.as_dict(False)
        assert loop.blocks == batched.blocks > 0

    def test_compressed_counters_exact(self, graph, features):
        order = randomized_order(graph, seed=5)
        _, loop = CompressedKernel(engine="loop").aggregate(
            graph, features, "gcn", order=order
        )
        _, batched = CompressedKernel(engine="batched").aggregate(
            graph, features, "gcn", order=order
        )
        assert loop.as_dict(False) == batched.as_dict(False)
        assert loop.decompressed_rows == batched.decompressed_rows > 0

    def test_combined_counters_exact(self, graph, features, params):
        order = randomized_order(graph, seed=5)
        _, _, loop = CompressedFusedKernel(engine="loop").run_layer(
            graph, features, params, "gcn", order=order
        )
        _, _, batched = CompressedFusedKernel(engine="batched").run_layer(
            graph, features, params, "gcn", order=order
        )
        assert loop.as_dict(False) == batched.as_dict(False)


@pytest.mark.parametrize("engine", ENGINES)
class TestDegenerateShapes:
    def test_empty_graph(self, engine):
        graph = CSRGraph.from_edges(0, [])
        h = np.zeros((0, 4), dtype=np.float32)
        out, stats = BasicKernel(engine=engine).aggregate(graph, h, "gcn")
        assert out.shape == (0, 4)
        assert stats.gathers == 0

    def test_single_vertex(self, engine):
        graph = CSRGraph.from_edges(1, [])
        h = np.full((1, 3), 2.0, dtype=np.float32)
        out, _ = BasicKernel(engine=engine).aggregate(graph, h, "gcn")
        np.testing.assert_allclose(out, gather_reduce_reference(graph, h, "gcn"))

    def test_isolated_vertices(self, engine):
        """Edgeless graph: every output row is the scaled self term."""
        graph = CSRGraph.from_edges(6, [])
        h = synthetic_features(graph, 5, seed=1)
        for aggregator in AGGREGATORS:
            out, _ = BasicKernel(engine=engine).aggregate(graph, h, aggregator)
            np.testing.assert_allclose(
                out, gather_reduce_reference(graph, h, aggregator), atol=ATOL
            )

    def test_mixed_isolated_and_connected(self, engine):
        graph = CSRGraph.from_edges(5, [(0, 1), (0, 2), (3, 0)])
        h = synthetic_features(graph, 4, seed=2)
        out, _ = BasicKernel(engine=engine).aggregate(graph, h, "mean")
        np.testing.assert_allclose(
            out, gather_reduce_reference(graph, h, "mean"), atol=ATOL
        )

    def test_all_zero_feature_rows(self, engine, graph):
        h = np.zeros((graph.num_vertices, 6), dtype=np.float32)
        out, _ = BasicKernel(engine=engine).aggregate(graph, h, "gcn")
        np.testing.assert_array_equal(out, np.zeros_like(out))

    def test_fused_single_vertex(self, engine):
        graph = CSRGraph.from_edges(1, [])
        h = np.ones((1, 4), dtype=np.float32)
        layer = GNNLayer(4, 2, aggregator="gcn", seed=0)
        params = UpdateParams(weight=layer.weight, bias=layer.bias, activation=True)
        h_out, _, _ = FusedKernel(engine=engine).run_layer(graph, h, params, "gcn")
        reference = params.apply(gather_reduce_reference(graph, h, "gcn").astype(np.float32))
        np.testing.assert_allclose(h_out, reference, atol=ATOL)


class TestBackwardEngineEquivalence:
    """The backward direction under the same differential contract."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("aggregator", AGGREGATORS)
    def test_matches_reference(self, graph, engine, aggregator):
        rng = np.random.default_rng(6)
        grad_a = rng.standard_normal((graph.num_vertices, 10)).astype(np.float32)
        reference = aggregate_backward_reference(graph, grad_a, aggregator)
        out, _ = BasicKernel(engine=engine).aggregate_backward(
            graph, grad_a, aggregator
        )
        np.testing.assert_allclose(out, reference, atol=ATOL)

    def test_backward_counters_exact(self, graph):
        """Loop and batched backward price identically: both count the
        transposed row degrees, so the counters must match bit-for-bit."""
        rng = np.random.default_rng(6)
        grad_a = rng.standard_normal((graph.num_vertices, 10)).astype(np.float32)
        _, loop = BasicKernel(engine="loop").aggregate_backward(
            graph, grad_a, "gcn"
        )
        _, batched = BasicKernel(engine="batched").aggregate_backward(
            graph, grad_a, "gcn"
        )
        assert loop.as_dict(False) == batched.as_dict(False)
        assert loop.gathers == graph.num_edges + graph.num_vertices


def _train(graph, h, labels, engine, epochs=3, seed=0):
    """One deterministic training run on the given engine."""
    model = build_model("gcn", h.shape[1], 8, 4, seed=seed)
    kernel = BasicKernel(engine=engine, task_size=37)
    trainer = Trainer(model, Adam(model, lr=0.01), aggregation_kernel=kernel)
    trainer.fit(graph, h, labels, epochs=epochs)
    return trainer


class TestTrainEquivalence:
    """End-to-end: three epochs under engine=loop and engine=batched must
    produce *bitwise identical* loss curves and final weights.  Both
    engines issue the same scipy csr_matvecs in the same per-row order
    (the batched chunk body is sliced from the same matrix the loop body
    indexes), so there is no accumulation-order slack to tolerate."""

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_bitwise_identical_training(self, graph, seed):
        h = synthetic_features(graph, 12, seed=seed, sparsity=0.4)
        labels = np.random.default_rng(seed).integers(0, 4, graph.num_vertices)
        loop = _train(graph, h, labels, "loop", seed=seed)
        batched = _train(graph, h, labels, "batched", seed=seed)
        assert loop.history.losses() == batched.history.losses()
        for la, lb in zip(loop.model.layers, batched.model.layers):
            assert np.array_equal(la.weight, lb.weight)
            assert np.array_equal(la.bias, lb.bias)

    def test_backward_engine_off_matches_oracle_numerics(self, graph):
        """backward_engine=False routes through the transpose-SpMM
        fallback; the loss curve must stay within fp32 reduction noise of
        the batched-backward run (same math, different summation)."""
        h = synthetic_features(graph, 12, seed=7, sparsity=0.4)
        labels = np.random.default_rng(7).integers(0, 4, graph.num_vertices)
        model_a = build_model("gcn", 12, 8, 4, seed=0)
        kern = BasicKernel(engine="batched", task_size=37)
        fast = Trainer(model_a, Adam(model_a, lr=0.01), aggregation_kernel=kern)
        fast.fit(graph, h, labels, epochs=3)
        model_b = build_model("gcn", 12, 8, 4, seed=0)
        kern_b = BasicKernel(engine="batched", task_size=37)
        slow = Trainer(
            model_b,
            Adam(model_b, lr=0.01),
            aggregation_kernel=kern_b,
            backward_engine=False,
        )
        slow.fit(graph, h, labels, epochs=3)
        np.testing.assert_allclose(
            fast.history.losses(), slow.history.losses(), rtol=1e-4
        )
        assert fast.history.backward_stats.gathers > 0
        assert slow.history.backward_stats.gathers == 0


class TestEngineKnob:
    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            BasicKernel(engine="vectorized")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "loop")
        assert BasicKernel().engine == "loop"
        monkeypatch.setenv("REPRO_ENGINE", "batched")
        assert FusedKernel().engine == "batched"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "loop")
        assert BasicKernel(engine="batched").engine == "batched"

    def test_engine_recorded_on_span(self, graph, features):
        from repro import obs

        tracer, _ = obs.enable()
        try:
            BasicKernel(engine="batched").aggregate(graph, features, "gcn")
        finally:
            obs.disable()
        spans = [s.to_record() for s in tracer.spans()]
        kernel_spans = [s for s in spans if s["name"] == "kernel.basic"]
        assert kernel_spans and all(
            s["attrs"]["engine"] == "batched" for s in kernel_spans
        )
