"""Algorithm 2: fused aggregation + update.

Each task processes ``T`` blocks of ``B`` vertices: aggregate a block,
then immediately update it with the small GEMM while the hardware
prefetcher streams the next block's inputs.  Two consequences the paper
highlights (Figure 5):

* the ``a`` block is consumed from cache, never re-read from DRAM;
* in inference, one reusable buffer of ``B`` rows replaces the whole
  ``a`` matrix — :class:`KernelStats.peak_buffer_bytes` proves the
  footprint reduction.

Tasks are dispatched through :class:`repro.parallel.ChunkExecutor`; the
``thread`` and ``process`` backends run Algorithm 2's task loop on real
workers with bitwise-identical results.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..obs import get_metrics, get_tracer, publish_counters
from .base import (
    FusedLayerKernel,
    KernelStats,
    UpdateParams,
    resolve_engine,
    validate_inputs,
)
from .basic import DEFAULT_PREFETCH_DISTANCE, PREFETCH_LINES_PER_VECTOR
from .jit import JitKernelCache, KernelSpec
from ..parallel.executor import ChunkExecutor, ExecutionReport
from ..parallel.plan import build_chunk_plan
from ..parallel.workload import FusedLayerWorkload

#: Default block size B: sized so a block of 256-float rows stays in L2.
DEFAULT_BLOCK_SIZE = 32

#: Default blocks per task T.
DEFAULT_BLOCKS_PER_TASK = 8


class FusedKernel(FusedLayerKernel):
    """The Graphite fused layer of Algorithm 2."""

    name = "fusion"

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        blocks_per_task: int = DEFAULT_BLOCKS_PER_TASK,
        prefetch_distance: int = DEFAULT_PREFETCH_DISTANCE,
        jit_cache: Optional[JitKernelCache] = None,
        executor: Optional[ChunkExecutor] = None,
        engine: Optional[str] = None,
    ) -> None:
        if block_size <= 0 or blocks_per_task <= 0:
            raise ValueError("block_size and blocks_per_task must be positive")
        self.block_size = block_size
        self.blocks_per_task = blocks_per_task
        self.prefetch_distance = prefetch_distance
        self.jit_cache = jit_cache or JitKernelCache()
        self.executor = executor or ChunkExecutor()
        self.engine = resolve_engine(engine)
        self.last_report: Optional[ExecutionReport] = None

    def run_layer(
        self,
        graph: CSRGraph,
        h: np.ndarray,
        params: UpdateParams,
        aggregator: str = "gcn",
        keep_aggregation: bool = False,
        order: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray], KernelStats]:
        validate_inputs(graph, h)
        if params.weight.shape[0] != h.shape[1]:
            raise ValueError(
                f"weight rows {params.weight.shape[0]} != features {h.shape[1]}"
            )
        n = graph.num_vertices
        if order is None:
            order = np.arange(n, dtype=np.int64)
        if len(order) != n:
            raise ValueError("order must cover every vertex exactly once")

        compiled_before = self.jit_cache.compilations
        engine = resolve_engine(self.engine)
        spec = KernelSpec(feature_len=h.shape[1], aggregator=aggregator)
        workload = FusedLayerWorkload(
            graph,
            h,
            params,
            aggregator,
            order,
            block_size=self.block_size,
            keep_aggregation=keep_aggregation,
            prefetch_distance=self.prefetch_distance,
            prefetch_lines=PREFETCH_LINES_PER_VECTOR,
            engine=engine,
        )
        if engine == "batched":
            workload.attach_batched(self.jit_cache.specialize_batched(graph, spec))
        else:
            workload.attach_inner(self.jit_cache.specialize(graph, spec))
        plan = build_chunk_plan(graph, self.block_size * self.blocks_per_task, order)
        with get_tracer().span(
            "kernel.fusion",
            aggregator=aggregator,
            vertices=n,
            edges=graph.num_edges,
            features=int(h.shape[1]),
            features_out=int(params.weight.shape[1]),
            keep_aggregation=keep_aggregation,
            backend=self.executor.backend,
            workers=self.executor.workers,
            engine=engine,
        ) as span:
            outputs, stats, report = self.executor.run(workload, plan)
            self.last_report = report
            a_full = outputs.get("a") if keep_aggregation else None
            stats.jit_compilations = self.jit_cache.compilations - compiled_before
            # Inference: one reusable B-row buffer per worker (Figure 5c).
            # Training: the full a matrix must survive for backward (Fig. 5b).
            stats.peak_buffer_bytes = (
                a_full.nbytes
                if a_full is not None
                else self.block_size * h.shape[1] * np.dtype(np.float32).itemsize
            )
            f_out = params.weight.shape[1]
            stats.flops = (
                2.0 * stats.gathers * h.shape[1]
                + 2.0 * n * h.shape[1] * f_out
            )
            span.add_counters(stats.as_dict())
        publish_counters(get_metrics(), "kernel.fusion", stats.as_dict(False))
        return outputs["h_out"], a_full, stats
