"""Partition-parallel sharded training over shared memory.

The scale story of ROADMAP item 2: instead of every worker holding the
full CSR (and the process backend re-pickling the graph into each pool),
the graph is split by an edge-cut partitioner
(:func:`repro.graphs.partition.edge_cut_partition`) into per-worker
shards — local CSR rows plus halo (ghost) vertex maps — and ALL
graph-sized state (shard CSR arrays, ψ factors, features, labels, masks,
and the per-layer exchange boards) lives in one
``multiprocessing.shared_memory`` segment (:class:`~repro.parallel.shm.
ArrayBundle`).  Workers attach by name and build zero-copy numpy views:
the only bytes that ever cross a pickle boundary are the bundle spec +
config at startup (O(#arrays), asserted bounded in the tests) and the
layer weights each epoch (O(model), not O(graph)).

Training runs bulk-synchronous per layer.  Each layer's halo exchange is
a shared-memory "board": every worker writes its owned rows of ``h_k``,
a barrier flips the phase, then workers gather the halo rows they need.
The backward pass runs the same protocol over the transposed shards
(``grad_h = Âᵀ grad_a``).  DistGNN-style *delayed aggregation* marks
layers whose halo is refreshed only every ``halo_refresh`` epochs: on
the epochs between refreshes the forward pass reuses the stale halo
block already sitting in the worker's input buffer, the backward pass
drops the remote gradient contributions (they flowed through stale
constants), and the barrier disappears along with the traffic.  With
``halo_refresh=1`` delayed layers degenerate to exact training.

The barrier schedule is a pure function of (layer, epoch, config), so
every worker derives the identical sequence — no tags, no deadlocks.
Epoch boundaries synchronize through the parent: it collects every
worker's partial result (loss/accuracy sums, per-layer ``grad_W``,
``grad_b``) before broadcasting the next epoch's weights, sums partials
in worker order (float64) and takes one optimizer step on the parent's
model — all shards therefore always see identical weights.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs.csr import CSRGraph
from ..graphs.partition import (
    GraphShard,
    PartitionResult,
    build_shards,
    edge_cut_partition,
)
from ..kernels.distgnn import shard_factors, shard_segment_reduce
from ..nn import functional as F
from ..nn.aggregate import normalization_factors
from ..nn.layers import LayerGrads
from ..nn.model import GNNModel
from ..nn.optim import Optimizer
from ..nn.training import EpochResult, TrainingHistory
from ..obs import get_metrics, get_tracer
from .shm import ArrayBundle

SHARD_BACKENDS = ("serial", "thread", "process")

_RESULT_TIMEOUT_S = 300.0


@dataclass(frozen=True)
class LayerSpec:
    """The picklable shape of one GNN layer (no parameters)."""

    in_features: int
    out_features: int
    aggregator: str
    activation: bool


@dataclass(frozen=True)
class ShardedConfig:
    """Everything a worker needs besides the shared arrays.

    Small and picklable: its byte size is part of the zero-copy
    guarantee (workers receive this + the bundle spec, nothing else).
    """

    num_shards: int
    layers: Tuple[LayerSpec, ...]
    delayed_layers: Tuple[int, ...]
    halo_refresh: int
    train_count: int
    val_count: int
    has_val_mask: bool

    @property
    def aggregators(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.aggregator for spec in self.layers}))

    def exchange_needed(self, layer: int, epoch: int) -> bool:
        """Whether ``layer`` exchanges halos on ``epoch``.

        Pure function of (layer, epoch, config): every worker computes
        the same barrier schedule from it.  Non-delayed layers exchange
        every epoch; delayed layers only on refresh epochs (epoch 0 is
        always a refresh, so training never starts from garbage halos).
        """
        if layer not in self.delayed_layers:
            return True
        return epoch % self.halo_refresh == 0


class ShardRuntime:
    """One shard's slice of the training loop, phase by phase.

    Binds zero-copy views over the shared bundle and owns the private
    per-layer input buffers whose tail rows hold the halo copies.  The
    phase methods (``forward_layer`` → ``loss_grad`` →
    ``backward_update`` → ``backward_aggregate``) are driven either by a
    worker loop (thread/process backends, with real barriers between
    phases) or interleaved across runtimes by the serial backend.
    """

    def __init__(self, bundle: ArrayBundle, part: int, config: ShardedConfig):
        self.cfg = config
        self.part = part
        prefix = f"s{part}."
        self.local = bundle.view(prefix + "local")
        self.halo = bundle.view(prefix + "halo")
        self.indptr = bundle.view(prefix + "indptr")
        self.indices = bundle.view(prefix + "indices")
        self.t_halo = bundle.view(prefix + "t_halo")
        self.t_indptr = bundle.view(prefix + "t_indptr")
        self.t_indices = bundle.view(prefix + "t_indices")
        self.factors = {
            agg: (
                bundle.view(f"{prefix}ef.{agg}"),
                bundle.view(f"{prefix}sf.{agg}"),
                bundle.view(f"{prefix}tef.{agg}"),
            )
            for agg in config.aggregators
        }
        self.features = bundle.view("x")
        num_layers = len(config.layers)
        self.boards_h = [bundle.view(f"h{k}") for k in range(num_layers)]
        self.boards_g: List[Optional[np.ndarray]] = [None] + [
            bundle.view(f"g{k}") for k in range(1, num_layers)
        ]
        self.labels_local = bundle.view("labels")[self.local]
        self.train_mask_local = bundle.view("train_mask")[self.local]
        self.val_mask_local = bundle.view("val_mask")[self.local]
        self.n_local = len(self.local)
        n_in = self.n_local + len(self.halo)
        n_t = self.n_local + len(self.t_halo)
        self._x = [
            np.zeros((n_in, spec.in_features), dtype=np.float32)
            for spec in config.layers
        ]
        self._xg: List[Optional[np.ndarray]] = [None] + [
            np.zeros((n_t, spec.in_features), dtype=np.float32)
            for spec in config.layers[1:]
        ]
        self._x0_ready = False
        self.weights: List[Tuple[np.ndarray, np.ndarray]] = []
        self._a: List[Optional[np.ndarray]] = [None] * num_layers
        self._pre: List[Optional[np.ndarray]] = [None] * num_layers
        self._h: List[Optional[np.ndarray]] = [None] * num_layers
        self._gw: List[Optional[np.ndarray]] = [None] * num_layers
        self._gb: List[Optional[np.ndarray]] = [None] * num_layers
        self._grad_a: Optional[np.ndarray] = None
        self._grad_out: Optional[np.ndarray] = None
        self.halo_bytes = 0
        self.exchanges = 0
        self.exchanges_skipped = 0

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def begin_epoch(self, weights: Sequence[Tuple[np.ndarray, np.ndarray]]):
        self.weights = list(weights)
        self.halo_bytes = 0
        self.exchanges = 0
        self.exchanges_skipped = 0

    def forward_layer(self, layer: int, epoch: int) -> None:
        spec = self.cfg.layers[layer]
        x = self._x[layer]
        nl = self.n_local
        if layer == 0:
            # Input features are static: gather own + halo rows once and
            # keep them for the whole run — layer 0 never exchanges.
            if not self._x0_ready:
                x[:nl] = self.features[self.local]
                x[nl:] = self.features[self.halo]
                self._x0_ready = True
        else:
            x[:nl] = self._h[layer - 1]
            if self.cfg.exchange_needed(layer, epoch):
                x[nl:] = self.boards_h[layer - 1][self.halo]
                self.halo_bytes += x[nl:].nbytes
                self.exchanges += 1
            else:
                # Delayed aggregation: the stale halo block from the last
                # refresh epoch stays in place — zero traffic, no barrier.
                self.exchanges_skipped += 1
        edge_f, self_f, _ = self.factors[spec.aggregator]
        a = shard_segment_reduce(self.indptr, self.indices, edge_f, self_f, x)
        weight, bias = self.weights[layer]
        pre = a @ weight + bias
        self._a[layer] = a
        self._pre[layer] = pre
        self._h[layer] = F.relu(pre) if spec.activation else pre
        self.boards_h[layer][self.local] = self._h[layer]

    def loss_grad(self) -> None:
        """Masked cross-entropy partials over the owned rows.

        Replicates :func:`repro.nn.functional.cross_entropy` numerics
        exactly per row (float64 softmax, 1e-12 clip, global-count
        division); only the final summation is split across shards.
        """
        logits = self._h[-1]
        probs = F.softmax(logits.astype(np.float64))
        rows = np.arange(len(logits))
        picked = probs[rows, self.labels_local]
        grad = probs
        grad[rows, self.labels_local] -= 1.0
        mask = self.train_mask_local
        self._loss_sum = float(
            -np.log(np.clip(picked[mask], 1e-12, None)).sum()
        )
        grad[~mask] = 0.0
        grad /= self.cfg.train_count
        self._grad_out = grad.astype(np.float32)
        pred = logits.argmax(axis=1)
        correct = pred == self.labels_local
        self._train_correct = int(correct[mask].sum())
        self._val_correct = (
            int(correct[self.val_mask_local].sum())
            if self.cfg.has_val_mask
            else 0
        )

    def backward_update(self, layer: int) -> None:
        spec = self.cfg.layers[layer]
        if spec.activation:
            grad_pre = self._grad_out * (self._pre[layer] > 0)
        else:
            grad_pre = self._grad_out
        self._gw[layer] = self._a[layer].T @ grad_pre
        self._gb[layer] = grad_pre.sum(axis=0)
        if layer > 0:
            grad_a = grad_pre @ self.weights[layer][0].T
            self._grad_a = grad_a
            self.boards_g[layer][self.local] = grad_a

    def backward_aggregate(self, layer: int, epoch: int) -> None:
        spec = self.cfg.layers[layer]
        xg = self._xg[layer]
        nl = self.n_local
        xg[:nl] = self._grad_a
        if self.cfg.exchange_needed(layer, epoch):
            xg[nl:] = self.boards_g[layer][self.t_halo]
            self.halo_bytes += xg[nl:].nbytes
            self.exchanges += 1
        else:
            # Delayed layer between refreshes: the forward consumed stale
            # remote activations (constants w.r.t. current weights), so
            # the remote gradient contributions are dropped — DistGNN's
            # local-only backward with periodic synchronization.
            xg[nl:] = 0.0
            self.exchanges_skipped += 1
        _, self_f, t_edge_f = self.factors[spec.aggregator]
        self._grad_out = shard_segment_reduce(
            self.t_indptr, self.t_indices, t_edge_f, self_f, xg
        )

    def epoch_result(self) -> Dict:
        return {
            "loss_sum": self._loss_sum,
            "train_correct": self._train_correct,
            "val_correct": self._val_correct,
            "grad_w": [g for g in self._gw],
            "grad_b": [g for g in self._gb],
            "halo_bytes": self.halo_bytes,
            "exchanges": self.exchanges,
            "exchanges_skipped": self.exchanges_skipped,
            "pid": os.getpid(),
        }


def _run_worker_epoch(runtime: ShardRuntime, epoch: int, weights, sync) -> Dict:
    """One bulk-synchronous epoch on one shard.

    ``sync`` is the barrier (``threading.Barrier.wait`` or
    ``multiprocessing.Barrier.wait``); it is invoked on the schedule
    derived from :meth:`ShardedConfig.exchange_needed`, identically in
    every worker.
    """
    runtime.begin_epoch(weights)
    cfg = runtime.cfg
    num_layers = len(cfg.layers)
    for layer in range(num_layers):
        if layer > 0 and cfg.exchange_needed(layer, epoch):
            sync()  # everyone has written boards_h[layer - 1]
        runtime.forward_layer(layer, epoch)
    runtime.loss_grad()
    for layer in range(num_layers - 1, -1, -1):
        runtime.backward_update(layer)
        if layer > 0:
            if cfg.exchange_needed(layer, epoch):
                sync()  # everyone has written boards_g[layer]
            runtime.backward_aggregate(layer, epoch)
    return runtime.epoch_result()


def _shard_worker_main(part, spec, config, cmd_queue, result_queue, barrier):
    """Persistent process-backend worker: attach once, train forever."""
    bundle = ArrayBundle.attach(spec)
    runtime = ShardRuntime(bundle, part, config)
    try:
        while True:
            msg = cmd_queue.get()
            if msg[0] == "stop":
                break
            _, epoch, weights = msg
            try:
                start = time.perf_counter()
                result = _run_worker_epoch(runtime, epoch, weights, barrier.wait)
                result["wall_s"] = time.perf_counter() - start
                result_queue.put((part, "ok", result))
            except BaseException:
                barrier.abort()  # unblock peers; they error out too
                result_queue.put((part, "error", traceback.format_exc()))
                break
    finally:
        runtime = None
        bundle.close()


class ShardedTrainer:
    """Partition-parallel full-batch trainer.

    Args:
        graph: the full CSR graph (parent-side only; never shipped).
        model: a :class:`GNNModel` with zero dropout (the sharded loop
            has no cross-shard RNG reproducibility story for masks).
        optimizer: steps on the parent model from summed partial grads.
        num_shards: worker/shard count.
        partition_method: ``contiguous`` / ``bfs`` / ``greedy``.
        backend: ``serial`` (interleaved in-process, the reference),
            ``thread``, or ``process`` (shared-memory flagship).
        delayed_layers: layer indices (≥ 1) running DistGNN-style
            delayed aggregation.
        halo_refresh: refresh period (epochs) for delayed layers;
            ``1`` makes delayed layers exact.
        refine_passes: boundary-refinement rounds for the partitioner.
    """

    def __init__(
        self,
        graph: CSRGraph,
        model: GNNModel,
        optimizer: Optimizer,
        num_shards: int = 2,
        partition_method: str = "greedy",
        backend: str = "process",
        delayed_layers: Sequence[int] = (),
        halo_refresh: int = 8,
        refine_passes: int = 1,
    ) -> None:
        if backend not in SHARD_BACKENDS:
            raise ValueError(
                f"backend must be one of {SHARD_BACKENDS}, got {backend!r}"
            )
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if halo_refresh < 1:
            raise ValueError("halo_refresh must be >= 1")
        num_layers = model.num_layers
        for layer_idx in delayed_layers:
            if not 1 <= layer_idx < num_layers:
                raise ValueError(
                    f"delayed layer {layer_idx} out of range [1, {num_layers});"
                    " layer 0 reads static input features and never exchanges"
                )
        for layer in model.layers:
            if layer.dropout:
                raise ValueError(
                    "sharded training requires dropout=0 on every layer"
                )
        self.graph = graph
        self.model = model
        self.optimizer = optimizer
        self.num_shards = num_shards
        self.partition_method = partition_method
        self.backend = backend
        self.delayed_layers = tuple(sorted(set(int(i) for i in delayed_layers)))
        self.halo_refresh = halo_refresh
        self.refine_passes = refine_passes
        self.history = TrainingHistory()
        self.partition: Optional[PartitionResult] = None
        self.shards: Optional[List[GraphShard]] = None
        self.setup_bytes: List[int] = []
        self.epoch_message_bytes = 0
        self.last_halo_bytes = 0
        self.last_exchanges = 0
        self.last_exchanges_skipped = 0
        self._bundle: Optional[ArrayBundle] = None
        self._config: Optional[ShardedConfig] = None
        self._runtimes: List[ShardRuntime] = []
        self._workers: List[mp.Process] = []
        self._cmd_queues = []
        self._result_queue = None
        self._barrier = None
        self._closed = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _setup(self, features, labels, train_mask, val_mask) -> None:
        tracer = get_tracer()
        metrics = get_metrics()
        graph = self.graph
        n = graph.num_vertices
        with tracer.span(
            "shard.partition", shards=self.num_shards,
            method=self.partition_method,
        ) as span:
            self.partition = edge_cut_partition(
                graph, self.num_shards, method=self.partition_method,
                refine_passes=self.refine_passes,
            )
            self.shards = build_shards(graph, self.partition.assignment)
            t_shards = build_shards(graph.transpose(), self.partition.assignment)
            edge_cut = self.partition.edge_cut(graph)
            span.set_attr("edge_cut", edge_cut)
            span.set_attr("balance", self.partition.balance)
        if metrics.enabled:
            metrics.set_gauge("shard.workers", float(self.num_shards))
            metrics.set_gauge("shard.partition.edge_cut", float(edge_cut))
            metrics.set_gauge(
                "shard.partition.cut_fraction",
                self.partition.cut_fraction(graph),
            )
            metrics.set_gauge("shard.partition.balance", self.partition.balance)

        specs = tuple(
            LayerSpec(
                in_features=layer.in_features,
                out_features=layer.out_features,
                aggregator=layer.aggregator,
                activation=layer.activation,
            )
            for layer in self.model.layers
        )
        train_mask_arr = (
            np.ones(n, dtype=bool) if train_mask is None
            else np.asarray(train_mask, dtype=bool)
        )
        val_mask_arr = (
            np.zeros(n, dtype=bool) if val_mask is None
            else np.asarray(val_mask, dtype=bool)
        )
        self._config = ShardedConfig(
            num_shards=self.num_shards,
            layers=specs,
            delayed_layers=self.delayed_layers,
            halo_refresh=self.halo_refresh,
            train_count=int(train_mask_arr.sum()),
            val_count=int(val_mask_arr.sum()),
            has_val_mask=val_mask is not None,
        )
        if self._config.train_count == 0:
            raise ValueError("loss mask selects no vertices")

        arrays: Dict[str, np.ndarray] = {
            "x": np.ascontiguousarray(features, dtype=np.float32),
            "labels": np.asarray(labels, dtype=np.int64),
            "train_mask": train_mask_arr,
            "val_mask": val_mask_arr,
        }
        for k, spec in enumerate(specs):
            arrays[f"h{k}"] = np.zeros((n, spec.out_features), dtype=np.float32)
            if k >= 1:
                arrays[f"g{k}"] = np.zeros((n, spec.in_features), dtype=np.float32)
        t_perm = graph.csc_arrays()[2]
        factor_cache = {
            agg: normalization_factors(graph, agg)
            for agg in self._config.aggregators
        }
        for shard, t_shard in zip(self.shards, t_shards):
            prefix = f"s{shard.part}."
            arrays[prefix + "local"] = shard.local_vertices
            arrays[prefix + "halo"] = shard.halo_vertices
            arrays[prefix + "indptr"] = shard.indptr
            arrays[prefix + "indices"] = shard.indices
            arrays[prefix + "t_halo"] = t_shard.halo_vertices
            arrays[prefix + "t_indptr"] = t_shard.indptr
            arrays[prefix + "t_indices"] = t_shard.indices
            for agg, (edge_f, self_f) in factor_cache.items():
                shard_edge_f, shard_self_f = shard_factors(edge_f, self_f, shard)
                arrays[f"{prefix}ef.{agg}"] = shard_edge_f
                arrays[f"{prefix}sf.{agg}"] = shard_self_f
                # Âᵀ edge factors: permute into the transposed edge
                # layout, then restrict to the transposed shard's edges.
                arrays[f"{prefix}tef.{agg}"] = np.ascontiguousarray(
                    edge_f[t_perm][t_shard.edge_positions]
                )

        self._bundle = ArrayBundle.create(arrays, shared=self.backend == "process")
        if self.backend == "process":
            self._start_workers()
        else:
            self._runtimes = [
                ShardRuntime(self._bundle, part, self._config)
                for part in range(self.num_shards)
            ]
            self.setup_bytes = [
                len(pickle.dumps(self._config))
            ] * self.num_shards
        if metrics.enabled:
            metrics.set_gauge(
                "shard.setup_bytes_max", float(max(self.setup_bytes))
            )

    def _start_workers(self) -> None:
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = mp.get_context()
        spec = self._bundle.spec()
        self._barrier = ctx.Barrier(self.num_shards)
        self._result_queue = ctx.Queue()
        self.setup_bytes = []
        for part in range(self.num_shards):
            cmd_queue = ctx.SimpleQueue()
            # The whole per-worker payload: bundle spec + config.  Its
            # pickled size is O(#arrays), independent of graph size —
            # the zero-copy guarantee the tests assert on.
            self.setup_bytes.append(len(pickle.dumps((part, spec, self._config))))
            worker = ctx.Process(
                target=_shard_worker_main,
                args=(
                    part, spec, self._config, cmd_queue,
                    self._result_queue, self._barrier,
                ),
                daemon=True,
                name=f"shard-worker-{part}",
            )
            worker.start()
            self._cmd_queues.append(cmd_queue)
            self._workers.append(worker)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        epochs: int,
        train_mask: Optional[np.ndarray] = None,
        val_mask: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train for ``epochs`` full-batch epochs across all shards."""
        if self._bundle is None:
            self._setup(features, labels, train_mask, val_mask)
        for _ in range(epochs):
            self.train_epoch()
        return self.history

    def train_epoch(self) -> EpochResult:
        if self._bundle is None:
            raise RuntimeError("call fit() first — the trainer is not set up")
        tracer = get_tracer()
        metrics = get_metrics()
        epoch = len(self.history.epochs)
        weights = [
            (layer.weight, layer.bias) for layer in self.model.layers
        ]
        start = time.perf_counter()
        with tracer.span("shard.epoch", epoch=epoch) as span:
            if self.backend == "process":
                results = self._run_epoch_process(epoch, weights)
            elif self.backend == "thread":
                results = self._run_epoch_thread(epoch, weights)
            else:
                results = self._run_epoch_serial(epoch, weights)
            result = self._combine(epoch, results)
            wall_s = time.perf_counter() - start
            self.last_halo_bytes = sum(r["halo_bytes"] for r in results)
            self.last_exchanges = sum(r["exchanges"] for r in results)
            self.last_exchanges_skipped = sum(
                r["exchanges_skipped"] for r in results
            )
            span.set_attr("loss", result.loss)
            span.set_attr("halo_bytes", self.last_halo_bytes)
            if metrics.enabled:
                self._publish(metrics, result, results, wall_s)
        self.history.epochs.append(result)
        return result

    def _run_epoch_serial(self, epoch: int, weights) -> List[Dict]:
        """Phase-interleaved reference execution: the loop nesting plays
        the role of the barriers (all runtimes finish phase ``k`` before
        any starts ``k + 1``)."""
        runtimes = self._runtimes
        for runtime in runtimes:
            runtime.begin_epoch(weights)
        num_layers = len(self._config.layers)
        for layer in range(num_layers):
            for runtime in runtimes:
                runtime.forward_layer(layer, epoch)
        for runtime in runtimes:
            runtime.loss_grad()
        for layer in range(num_layers - 1, -1, -1):
            for runtime in runtimes:
                runtime.backward_update(layer)
            if layer > 0:
                for runtime in runtimes:
                    runtime.backward_aggregate(layer, epoch)
        return [runtime.epoch_result() for runtime in runtimes]

    def _run_epoch_thread(self, epoch: int, weights) -> List[Dict]:
        import threading

        barrier = threading.Barrier(self.num_shards)
        results: List[Optional[Dict]] = [None] * self.num_shards
        errors: List[BaseException] = []

        def run(part: int) -> None:
            try:
                results[part] = _run_worker_epoch(
                    self._runtimes[part], epoch, weights, barrier.wait
                )
            except BaseException as exc:  # pragma: no cover - defensive
                barrier.abort()
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(part,), daemon=True)
            for part in range(self.num_shards)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    def _run_epoch_process(self, epoch: int, weights) -> List[Dict]:
        msg = ("epoch", epoch, weights)
        self.epoch_message_bytes = len(pickle.dumps(msg))
        for cmd_queue in self._cmd_queues:
            cmd_queue.put(msg)
        results: List[Optional[Dict]] = [None] * self.num_shards
        failures = []
        for _ in range(self.num_shards):
            try:
                part, status, payload = self._result_queue.get(
                    timeout=_RESULT_TIMEOUT_S
                )
            except Exception:  # pragma: no cover - dead/hung worker
                dead = [
                    worker.name for worker in self._workers
                    if not worker.is_alive()
                ]
                raise RuntimeError(
                    f"shard epoch timed out; dead workers: {dead or 'none'}"
                ) from None
            if status == "ok":
                results[part] = payload
            else:
                failures.append((part, payload))
        if failures:
            part, trace = failures[0]
            raise RuntimeError(
                f"shard worker {part} failed:\n{trace}"
            )
        return results

    def _combine(self, epoch: int, results: List[Dict]) -> EpochResult:
        cfg = self._config
        loss = sum(r["loss_sum"] for r in results) / cfg.train_count
        train_acc = (
            sum(r["train_correct"] for r in results) / cfg.train_count
        )
        val_acc = (
            sum(r["val_correct"] for r in results) / cfg.val_count
            if cfg.has_val_mask and cfg.val_count
            else None
        )
        grads = []
        for layer_idx, layer in enumerate(self.model.layers):
            # Deterministic reduction: partials summed in worker order at
            # float64, like the paper's per-thread partial buffers.
            grad_w = np.zeros(layer.weight.shape, dtype=np.float64)
            grad_b = np.zeros(layer.bias.shape, dtype=np.float64)
            for r in results:
                grad_w += r["grad_w"][layer_idx]
                grad_b += r["grad_b"][layer_idx]
            grads.append(
                LayerGrads(
                    weight=grad_w.astype(np.float32),
                    bias=grad_b.astype(np.float32),
                    h_in=np.zeros((0, 0), dtype=np.float32),
                )
            )
        self.optimizer.step(grads)
        return EpochResult(
            epoch=epoch,
            loss=float(loss),
            train_accuracy=float(train_acc),
            val_accuracy=val_acc,
        )

    def _publish(self, metrics, result, results, wall_s: float) -> None:
        metrics.set_gauge("shard.epoch", float(result.epoch))
        metrics.set_gauge("shard.loss", float(result.loss))
        metrics.inc("shard.halo_bytes", sum(r["halo_bytes"] for r in results))
        metrics.inc("shard.exchanges", sum(r["exchanges"] for r in results))
        metrics.inc(
            "shard.exchanges_skipped",
            sum(r["exchanges_skipped"] for r in results),
        )
        metrics.observe("shard.epoch_time_s", wall_s)
        if self.epoch_message_bytes:
            metrics.set_gauge(
                "shard.epoch_message_bytes", float(self.epoch_message_bytes)
            )

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------
    def logits(self) -> np.ndarray:
        """Final-layer board after the last epoch's forward (all rows)."""
        if self._bundle is None:
            raise RuntimeError("trainer is not set up")
        return np.array(self._bundle.view(f"h{len(self._config.layers) - 1}"))

    def worker_pids(self) -> List[int]:
        return [worker.pid for worker in self._workers]

    def close(self) -> None:
        """Stop workers and release the shared segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for cmd_queue in self._cmd_queues:
            try:
                cmd_queue.put(("stop",))
            except Exception:  # pragma: no cover - teardown best effort
                pass
        for worker in self._workers:
            worker.join(timeout=10)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=5)
        self._runtimes = []
        if self._bundle is not None:
            self._bundle.close()
            self._bundle.unlink()
            self._bundle = None

    def __enter__(self) -> "ShardedTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
