"""Unit tests for mini-batch (sampled) training."""

import numpy as np
import pytest

from repro.gpu import sample_blocks
from repro.graphs import planted_partition_graph
from repro.nn import Adam, build_model
from repro.nn.minibatch import MiniBatchTrainer, block_aggregate


@pytest.fixture(scope="module")
def task():
    graph, labels = planted_partition_graph(160, 3, p_in=0.12, p_out=0.01, seed=7)
    rng = np.random.default_rng(7)
    features = rng.standard_normal((160, 8)).astype(np.float32)
    features[:, 0] += labels.astype(np.float32)
    return graph, features, labels


class TestBlockAggregate:
    def test_mean_of_sampled_neighbors(self):
        edge_dst = np.array([5, 5, 9])
        edge_src = np.array([1, 3, 3])
        dst = np.array([5, 9])
        h_src = np.array([[2.0], [4.0]], dtype=np.float32)  # rows for 1, 3
        src_index = {1: 0, 3: 1}
        out = block_aggregate(edge_dst, edge_src, dst, h_src, src_index)
        np.testing.assert_allclose(out[0], 3.0)  # mean(2, 4)
        np.testing.assert_allclose(out[1], 4.0)

    def test_isolated_destination_zero(self):
        out = block_aggregate(
            np.array([]), np.array([]), np.array([7]),
            np.zeros((0, 2), np.float32), {},
        )
        np.testing.assert_array_equal(out, 0.0)


class TestMiniBatchTrainer:
    def test_requires_mean_aggregator(self, task):
        model = build_model("gcn", 8, 16, 3, num_layers=2)
        with pytest.raises(ValueError):
            MiniBatchTrainer(model, Adam(model, lr=0.01))

    def test_forward_shapes(self, task):
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=0)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.01))
        rng = np.random.default_rng(0)
        batch = sample_blocks(graph, np.arange(12), (5, 5), rng)
        logits, caches = trainer.forward_batch(batch, features)
        assert logits.shape == (len(batch.blocks[-1].dst_vertices), 3)
        assert len(caches) == 2

    def test_epoch_loss_decreases(self, task):
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=1)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.02))
        first = trainer.fit_epoch(graph, features, labels, 32, (5, 5), seed=0)
        for epoch in range(4):
            last = trainer.fit_epoch(
                graph, features, labels, 32, (5, 5), seed=epoch + 1
            )
        assert last < first

    def test_fanout_count_checked(self, task):
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=2)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.01))
        with pytest.raises(ValueError):
            trainer.fit_epoch(graph, features, labels, 32, (5,))

    def test_steps_recorded(self, task):
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=3)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.01))
        trainer.fit_epoch(graph, features, labels, 64, (4, 4), seed=0)
        assert len(trainer.steps) == (graph.num_vertices + 63) // 64
        assert all(s.sampled_edges > 0 for s in trainer.steps)

    def test_weights_usable_full_batch_afterwards(self, task):
        """Sampled-trained parameters plug straight into full-batch
        inference — the workflows share the model object."""
        graph, features, labels = task
        model = build_model("sage", 8, 16, 3, num_layers=2, seed=4)
        trainer = MiniBatchTrainer(model, Adam(model, lr=0.02))
        for epoch in range(3):
            trainer.fit_epoch(graph, features, labels, 32, (5, 5), seed=epoch)
        logits = model.predict(graph, features)
        accuracy = float((logits.argmax(axis=1) == labels).mean())
        assert accuracy > 0.4  # chance is ~0.33
