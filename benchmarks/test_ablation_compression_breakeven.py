"""Ablation: compression break-even sparsity (Section 4.3).

The mask costs 1/32 of the dense traffic, so transfers only shrink above
~3.1% sparsity — and end-to-end speedup needs much more than that
because decompression adds compute (Figure 14's 10% points lose).
"""

import numpy as np
from conftest import run_experiment

from repro.bench.harness import Experiment
from repro.perf import CostModel
from repro.tensors import traffic_saved


def _sweep(ctx):
    model = ctx.cost_model("products")
    exp = Experiment("ablation-breakeven", "Compression break-even sparsity")
    exp.add("traffic break-even sparsity", 1 / 32, unit="frac")
    # Find the end-to-end break-even by bisection on the cost model.
    low, high = 0.0, 0.9
    for _ in range(20):
        mid = (low + high) / 2
        s = model.speedup("compression", 100, 128, sparsity=mid, baseline="basic")
        if s < 1.0:
            low = mid
        else:
            high = mid
    exp.add("end-to-end break-even sparsity", (low + high) / 2, unit="frac")
    return exp


def test_breakeven_ablation(benchmark, ctx):
    exp = run_experiment(benchmark, _sweep, ctx)
    values = {r.label: r.measured for r in exp.rows}
    # End-to-end break-even is far above the 3.1% traffic break-even and
    # sits between Figure 14's losing 10% point and winning 30% point.
    assert 0.10 < values["end-to-end break-even sparsity"] < 0.35
    assert traffic_saved(values["end-to-end break-even sparsity"]) > 0
